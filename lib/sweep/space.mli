(** The typed synthesis design space: the axes a sweep explores.

    Each axis is one knob of the Figure 3 design pipeline or of the
    runtime that executes its output — the same knobs the paper's
    Section VI-E sensitivity studies turn one at a time, here swept
    jointly:

    - {e delta} — the uncertainty guardband of the hardware-layer
      specification (Figure 16 turns this knob);
    - {e input weight} — the H-infinity actuator-effort weight of the
      hardware layer (Figure 17);
    - {e bound} — the performance-output deviation bound, applied to the
      hardware layer and, proportionally, to the software layer
      (Figure 15);
    - {e epoch} — the runtime stepping period the synthesized stack is
      invoked at (the controllers themselves stay designed at their
      0.5 s period, so off-nominal epochs probe invocation-rate
      mismatch);
    - {e arrangement} — which layers run, in which order, built from the
      {!Yukta.Schemes} stack builders (full two-layer Yukta, the
      reversed stepping order, hardware SSV under the heuristic OS).

    A {e point} is one concrete assignment, identified by its index in
    the fixed mixed-radix enumeration order, so a point id means the
    same design everywhere: across shards, job counts and resumed runs
    (the determinism contract of DESIGN.md section 14). *)

(** Layer subset/ordering of a point, realized via the [Yukta.Schemes]
    builders. *)
type arrangement =
  | Sw_over_hw  (** The paper's order: software steps before hardware
                    (scheme (d), [Schemes.yukta_full_stack]). *)
  | Hw_over_sw  (** Both SSV layers, stepping order reversed. *)
  | Hw_only     (** Hardware SSV under the coordinated heuristic OS
                    scheduler (scheme (c)). *)

val arrangement_name : arrangement -> string
(** ["sw>hw"], ["hw>sw"], ["hw-only"]. *)

val arrangement_of_name : string -> arrangement option
(** Inverse of {!arrangement_name}; [None] on anything else. *)

type t = private {
  deltas : float array;        (** Uncertainty guardbands, e.g. 0.4 = ±40%. *)
  weights : float array;       (** Input-weight scalings. *)
  bounds : float array;        (** Performance deviation bounds. *)
  epochs : float array;        (** Stepping epochs, seconds. *)
  arrangements : arrangement array;
}
(** An axis grid. Private: build one with {!make} (which validates) so
    every [t] in flight enumerates safely. *)

val make :
  ?deltas:float array ->
  ?weights:float array ->
  ?bounds:float array ->
  ?epochs:float array ->
  ?arrangements:arrangement array ->
  unit ->
  t
(** A space from explicit axis values; omitted axes default to the
    {!default} grid's. Axis values must be positive and each axis
    non-empty.
    @raise Invalid_argument on an empty axis or a non-positive value. *)

val default : t
(** The full exploration grid: guardbands {0.4, 1.0, 2.5}, weights
    {0.5, 1.0, 2.0}, bounds {0.2, 0.3, 0.5}, epochs {0.25, 0.5, 1.0},
    all three arrangements — 243 points, 27 hardware-layer syntheses. *)

val smoke : t
(** The CI-sized grid: guardbands {0.4, 1.0}, bounds {0.2, 0.5}, weight
    1.0, epoch 0.5 s, arrangements [Sw_over_hw] and [Hw_only] — 8
    points, 4 hardware-layer syntheses. *)

val cardinality : t -> int
(** Number of points in the grid (product of axis lengths). *)

type point = {
  id : int;             (** Index in enumeration order, [0 .. cardinality-1]. *)
  delta : float;
  weight : float;
  bound : float;
  epoch : float;
  arrangement : arrangement;
}

val point : t -> int -> point
(** Decode a point id (mixed-radix, axes varying fastest in declaration
    order: delta, weight, bound, epoch, arrangement).
    @raise Invalid_argument when the id is outside the grid. *)

val sample : t -> seed:int -> count:int -> int list
(** A deterministic sample of [count] distinct point ids, ascending.
    [count >= cardinality] (or [count <= 0]) selects every point; a
    proper subset is drawn by a partial Fisher-Yates shuffle whose
    randomness derives from [seed] through a splitmix64 finalizer (the
    [Fleet.Seed] construction), so the same [(space, seed, count)]
    yields the same ids on every run, shard and machine. *)

val to_json : t -> Obs.Json.t
(** The axis grid as a JSON object (one array per axis) — the ["space"]
    block of the sweep artifact. *)

val point_fields : point -> (string * Obs.Json.t) list
(** The point's axis assignment as JSON fields ([id], [delta],
    [input_weight], [bound], [epoch_s], [arrangement]) — embedded in
    frontier members and checkpoint lines. *)

val point_of_fields : Obs.Json.t -> point option
(** Recover a point from an object carrying {!point_fields}; [None] if
    any field is missing or malformed. *)

val fingerprint : t -> string
(** A short hex digest of the axis grid. Checkpoints and shard
    artifacts embed it (combined with the plan parameters — see
    [Run.fingerprint]) so a resumed or merged sweep can refuse to mix
    results from different spaces. *)
