(** The online Pareto frontier the reduce phase folds sweep results
    into.

    Three objectives, all minimized:

    - {e mu} — the certified SSV peak of the point's synthesized
      designs (worst layer): the robustness margin, where [mu <= 1]
      certifies the requested guardband/bounds combination;
    - {e exd} — energy-delay product of the probe run: performance;
    - {e macs} — multiply-accumulates per controller invocation summed
      over the point's synthesized controllers: the {e deterministic}
      synthesis-cost objective. Synthesis wall time is recorded
      alongside results but deliberately kept out of dominance and out
      of the frontier artifact — it depends on cache state and machine,
      and the frontier must be byte-identical across job counts, shards
      and reruns (DESIGN.md section 14).

    A member is kept iff no other evaluated point is at least as good on
    every objective and strictly better on one. The surviving set is the
    set of maximal elements of the evaluated population, which is
    independent of insertion order — the property that makes the reduce
    phase streamable and shard merging exact (the frontier of a union is
    the frontier of the union of per-shard frontiers). *)

type entry = {
  point : Space.point;
  mu : float;    (** Certified SSV peak, worst synthesized layer. *)
  exd : float;   (** E x D of the probe run, J.s. *)
  macs : int;    (** Multiply-accumulates per invocation, all layers. *)
}

val dominates : entry -> entry -> bool
(** [dominates a b] — [a] is at least as good as [b] on all three
    objectives and strictly better on at least one. *)

type t
(** A mutable online frontier. Not domain-safe: insert from one domain
    (the reduce phase runs in the calling domain only). *)

val create : unit -> t

val insert : t -> entry -> bool
(** Offer an entry. Returns [false] (and changes nothing) when an
    existing member dominates it; otherwise evicts every member the
    entry dominates, adds it, and returns [true]. Entries with equal
    objectives all stay (neither strictly dominates). *)

val size : t -> int

val members : t -> entry list
(** The current frontier, sorted by point id — the canonical order of
    the artifact, independent of insertion order. *)

val entry_json : entry -> Obs.Json.t
(** One frontier member as a JSON object: the point's axis fields plus
    [mu_peak], [exd_js] and [synth_macs]. *)

val entry_of_json : Obs.Json.t -> entry option
(** Inverse of {!entry_json}; [None] on a malformed object. *)
