(* Append-only JSONL checkpoints, one file per shard.

   Line 1 is a header {type:"header", schema, fingerprint}; every other
   line is {type:"point", ...entry fields..., synth_wall_s}. Appends
   flush per line so a kill loses at most the line being written, and
   loads drop an unparseable *final* line (the partial append) while
   treating garbage in the middle as corruption. *)

let schema = "yukta.sweep-checkpoint/v1"

let path ~dir ~fingerprint ~shard ~shards =
  Filename.concat dir
    (Printf.sprintf "sweep-%s-shard-%d-of-%d.jsonl" fingerprint shard shards)

type record = {
  entry : Frontier.entry;
  synth_wall_s : float;
}

exception Mismatch of string

let record_json r =
  match Frontier.entry_json r.entry with
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (("type", Obs.Json.String "point")
      :: fields
      @ [ ("synth_wall_s", Obs.Json.Float r.synth_wall_s) ])
  | _ -> assert false

let record_of_json j =
  let ( let* ) = Option.bind in
  let* entry = Frontier.entry_of_json j in
  let* synth_wall_s =
    Option.bind (Obs.Json.member "synth_wall_s" j) Obs.Json.to_float_opt
  in
  Some { entry; synth_wall_s }

let header_json ~fingerprint =
  Obs.Json.Obj
    [
      ("type", Obs.Json.String "header");
      ("schema", Obs.Json.String schema);
      ("fingerprint", Obs.Json.String fingerprint);
    ]

let check_header ~fingerprint file line =
  let fail msg = raise (Mismatch (Printf.sprintf "%s: %s" file msg)) in
  match Obs.Json.of_string line with
  | exception Obs.Json.Parse_error _ -> fail "not a checkpoint file"
  | j -> (
    (match Option.bind (Obs.Json.member "schema" j) Obs.Json.to_string_opt with
    | Some s when s = schema -> ()
    | _ -> fail "not a sweep checkpoint (bad or missing schema)");
    match
      Option.bind (Obs.Json.member "fingerprint" j) Obs.Json.to_string_opt
    with
    | Some f when f = fingerprint -> ()
    | Some f ->
      fail
        (Printf.sprintf
           "checkpoint fingerprint %s does not match this sweep (%s) — the \
            space, probe or sampling changed; remove the file to restart"
           f fingerprint)
    | None -> fail "header carries no fingerprint")

let load ~fingerprint file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (match input_line ic with
        | header -> check_header ~fingerprint file header
        | exception End_of_file ->
          raise (Mismatch (file ^ ": empty checkpoint file")));
        (* Records, newest last. A line that fails to parse is fine iff
           it is the last one (a partial append); otherwise corrupt. *)
        let records = ref [] in
        let pending_bad = ref None in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then begin
               match !pending_bad with
               | Some bad ->
                 raise
                   (Mismatch
                      (Printf.sprintf "%s: corrupt checkpoint line %S" file bad))
               | None -> (
                 match record_of_json (Obs.Json.of_string line) with
                 | Some r -> records := r :: !records
                 | None | (exception Obs.Json.Parse_error _) ->
                   pending_bad := Some line)
             end
           done
         with End_of_file -> ());
        List.rev !records)
  end

(* A file killed mid-append ends without a newline. Appending straight
   after would glue the next record onto the partial line, turning a
   tolerated truncation into mid-file corruption on the following load
   — so trim the file back to its last complete line first. *)
let trim_partial_tail file =
  let len = (Unix.stat file).Unix.st_size in
  if len > 0 then begin
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let at pos =
          seek_in ic pos;
          input_char ic
        in
        if at (len - 1) <> '\n' then begin
          let rec last_newline pos =
            if pos < 0 then 0 else if at pos = '\n' then pos + 1
            else last_newline (pos - 1)
          in
          Unix.truncate file (last_newline (len - 1))
        end)
  end

let append_channel ~fingerprint ~existing file =
  let dir = Filename.dirname file in
  if not (Sys.file_exists dir) then (
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ());
  if existing then trim_partial_tail file;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 file
  in
  if not existing then begin
    output_string oc (Obs.Json.to_string (header_json ~fingerprint));
    output_char oc '\n';
    flush oc
  end;
  oc

let append oc r =
  output_string oc (Obs.Json.to_string (record_json r));
  output_char oc '\n';
  flush oc
