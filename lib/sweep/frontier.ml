(* Online Pareto frontier over (mu, exd, macs), all minimized.

   The frontier is the set of maximal elements of everything inserted so
   far — an order-independent function of the population, which is what
   lets the reduce phase stream and lets shard frontiers merge into
   exactly the single-shot frontier. Members are kept unsorted in a
   list (frontiers stay small); [members] sorts by point id so the
   emitted artifact is canonical. *)

type entry = {
  point : Space.point;
  mu : float;
  exd : float;
  macs : int;
}

let dominates a b =
  a.mu <= b.mu && a.exd <= b.exd && a.macs <= b.macs
  && (a.mu < b.mu || a.exd < b.exd || a.macs < b.macs)

type t = { mutable entries : entry list }

let create () = { entries = [] }

let insert t e =
  if List.exists (fun m -> dominates m e) t.entries then false
  else begin
    t.entries <- e :: List.filter (fun m -> not (dominates e m)) t.entries;
    true
  end

let size t = List.length t.entries

let members t =
  List.sort
    (fun a b -> compare a.point.Space.id b.point.Space.id)
    t.entries

let entry_json e =
  Obs.Json.Obj
    (Space.point_fields e.point
    @ [
        ("mu_peak", Obs.Json.Float e.mu);
        ("exd_js", Obs.Json.Float e.exd);
        ("synth_macs", Obs.Json.Int e.macs);
      ])

let entry_of_json j =
  let open Obs.Json in
  let ( let* ) = Option.bind in
  let* point = Space.point_of_fields j in
  let* mu = Option.bind (member "mu_peak" j) to_float_opt in
  let* exd = Option.bind (member "exd_js" j) to_float_opt in
  let* macs = Option.bind (member "synth_macs" j) to_int_opt in
  Some { point; mu; exd; macs }
