(* The typed design space: axis grids, mixed-radix point enumeration,
   and deterministic seeded sampling.

   Point ids are indices in a fixed mixed-radix order (delta varies
   fastest), so an id names the same design on every shard, job count
   and resumed run. Sampling derives all randomness from the caller's
   seed through the same splitmix64 finalizer Fleet.Seed uses, never
   from the global Random state. *)

type arrangement = Sw_over_hw | Hw_over_sw | Hw_only

let arrangement_name = function
  | Sw_over_hw -> "sw>hw"
  | Hw_over_sw -> "hw>sw"
  | Hw_only -> "hw-only"

let arrangement_of_name = function
  | "sw>hw" -> Some Sw_over_hw
  | "hw>sw" -> Some Hw_over_sw
  | "hw-only" -> Some Hw_only
  | _ -> None

type t = {
  deltas : float array;
  weights : float array;
  bounds : float array;
  epochs : float array;
  arrangements : arrangement array;
}

let default =
  {
    deltas = [| 0.4; 1.0; 2.5 |];
    weights = [| 0.5; 1.0; 2.0 |];
    bounds = [| 0.2; 0.3; 0.5 |];
    epochs = [| 0.25; 0.5; 1.0 |];
    arrangements = [| Sw_over_hw; Hw_over_sw; Hw_only |];
  }

let smoke =
  {
    deltas = [| 0.4; 1.0 |];
    weights = [| 1.0 |];
    bounds = [| 0.2; 0.5 |];
    epochs = [| 0.5 |];
    arrangements = [| Sw_over_hw; Hw_only |];
  }

let check_axis name a =
  if Array.length a = 0 then
    invalid_arg (Printf.sprintf "Space.make: empty %s axis" name);
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v <= 0.0 then
        invalid_arg
          (Printf.sprintf "Space.make: non-positive %s value %g" name v))
    a

let make ?(deltas = default.deltas) ?(weights = default.weights)
    ?(bounds = default.bounds) ?(epochs = default.epochs)
    ?(arrangements = default.arrangements) () =
  check_axis "delta" deltas;
  check_axis "weight" weights;
  check_axis "bound" bounds;
  check_axis "epoch" epochs;
  if Array.length arrangements = 0 then
    invalid_arg "Space.make: empty arrangement axis";
  { deltas; weights; bounds; epochs; arrangements }

let cardinality s =
  Array.length s.deltas * Array.length s.weights * Array.length s.bounds
  * Array.length s.epochs
  * Array.length s.arrangements

type point = {
  id : int;
  delta : float;
  weight : float;
  bound : float;
  epoch : float;
  arrangement : arrangement;
}

let point s id =
  if id < 0 || id >= cardinality s then
    invalid_arg
      (Printf.sprintf "Space.point: id %d outside the %d-point grid" id
         (cardinality s));
  let i = ref id in
  let next axis =
    let n = Array.length axis in
    let v = axis.(!i mod n) in
    i := !i / n;
    v
  in
  let delta = next s.deltas in
  let weight = next s.weights in
  let bound = next s.bounds in
  let epoch = next s.epochs in
  let arrangement = next s.arrangements in
  { id; delta; weight; bound; epoch; arrangement }

(* Splitmix64 finalizer — the Fleet.Seed construction, reused here so
   sampling needs no dependency on the fleet library. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let derive ~seed ~stream =
  let open Int64 in
  let z =
    add (mul (of_int seed) 0x9e3779b97f4a7c15L)
      (mul (of_int (stream + 1)) 0xbf58476d1ce4e5b9L)
  in
  to_int (logand (mix64 z) 0x3FFFFFFFL)

let sample s ~seed ~count =
  let n = cardinality s in
  if count <= 0 || count >= n then List.init n Fun.id
  else begin
    (* Partial Fisher-Yates: after [count] swap steps the prefix holds a
       uniform [count]-subset; sort it so shards stripe a stable order. *)
    let ids = Array.init n Fun.id in
    for i = 0 to count - 1 do
      let j = i + (derive ~seed ~stream:i mod (n - i)) in
      let t = ids.(i) in
      ids.(i) <- ids.(j);
      ids.(j) <- t
    done;
    let chosen = Array.sub ids 0 count in
    Array.sort compare chosen;
    Array.to_list chosen
  end

let axis_json a = Obs.Json.List (Array.to_list (Array.map (fun v -> Obs.Json.Float v) a))

let to_json s =
  Obs.Json.Obj
    [
      ("delta", axis_json s.deltas);
      ("input_weight", axis_json s.weights);
      ("bound", axis_json s.bounds);
      ("epoch_s", axis_json s.epochs);
      ( "arrangement",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (fun a -> Obs.Json.String (arrangement_name a))
                s.arrangements)) );
    ]

let point_fields p =
  [
    ("id", Obs.Json.Int p.id);
    ("delta", Obs.Json.Float p.delta);
    ("input_weight", Obs.Json.Float p.weight);
    ("bound", Obs.Json.Float p.bound);
    ("epoch_s", Obs.Json.Float p.epoch);
    ("arrangement", Obs.Json.String (arrangement_name p.arrangement));
  ]

let point_of_fields j =
  let open Obs.Json in
  let ( let* ) = Option.bind in
  let* id = Option.bind (member "id" j) to_int_opt in
  let* delta = Option.bind (member "delta" j) to_float_opt in
  let* weight = Option.bind (member "input_weight" j) to_float_opt in
  let* bound = Option.bind (member "bound" j) to_float_opt in
  let* epoch = Option.bind (member "epoch_s" j) to_float_opt in
  let* name = Option.bind (member "arrangement" j) to_string_opt in
  let* arrangement = arrangement_of_name name in
  Some { id; delta; weight; bound; epoch; arrangement }

let fingerprint s =
  let b = Buffer.create 256 in
  Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "d%.17g;" v)) s.deltas;
  Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "w%.17g;" v)) s.weights;
  Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "b%.17g;" v)) s.bounds;
  Array.iter (fun v -> Buffer.add_string b (Printf.sprintf "e%.17g;" v)) s.epochs;
  Array.iter
    (fun a -> Buffer.add_string b (arrangement_name a ^ ";"))
    s.arrangements;
  String.sub (Digest.to_hex (Digest.string (Buffer.contents b))) 0 16
