(* The map-reduce sweep driver.

   map: point id -> synthesize (through the .yukta_cache/ content
   addressing) + probe run; reduce: fold each record, in input order, into
   the online frontier and the shard's checkpoint. Everything that can
   reach the frontier is a pure function of the plan; wall-clock
   quantities stay out of it (DESIGN.md section 14). *)

open Yukta

type probe = {
  app : string;
  ginsts : float;
  max_time : float;
}

type plan = {
  space : Space.t;
  seed : int;
  points : int;
  probe : probe;
}

let default_probe = { app = "blackscholes"; ginsts = 60.0; max_time = 240.0 }

let smoke_probe = { app = "blackscholes"; ginsts = 12.0; max_time = 60.0 }

let plan ?(space = Space.default) ?(seed = 42) ?(points = 0)
    ?(probe = default_probe) () =
  (match Board.Workload.by_name probe.app with
  | (_ : Board.Workload.t) -> ()
  | exception _ ->
    invalid_arg (Printf.sprintf "Run.plan: unknown probe app %S" probe.app));
  if probe.ginsts <= 0.0 then invalid_arg "Run.plan: non-positive probe size";
  if probe.max_time <= 0.0 then
    invalid_arg "Run.plan: non-positive probe horizon";
  { space; seed; points; probe }

let sample_size p =
  let n = Space.cardinality p.space in
  if p.points <= 0 || p.points >= n then n else p.points

let fingerprint p =
  let key =
    Printf.sprintf "sweep-v1-%s-seed%d-points%d-%s-%.17g-%.17g"
      (Space.fingerprint p.space) p.seed (sample_size p) p.probe.app
      p.probe.ginsts p.probe.max_time
  in
  String.sub (Digest.to_hex (Digest.string key)) 0 16

type shard = { index : int; shards : int }

let whole = { index = 1; shards = 1 }

let check_shard s =
  if s.shards < 1 || s.index < 1 || s.index > s.shards then
    invalid_arg
      (Printf.sprintf "Run.shard: invalid shard %d/%d" s.index s.shards)

let shard_ids p s =
  check_shard s;
  let ids = Space.sample p.space ~seed:p.seed ~count:p.points in
  List.filteri (fun k _ -> k mod s.shards = s.index - 1) ids

(* ------------------------------------------------------------------ *)
(* Point evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let probe_workloads p =
  [ Board.Workload.scale ~ginsts:p.probe.ginsts
      (Board.Workload.by_name p.probe.app) ]

let evaluate p (pt : Space.point) =
  let t0 = Obs.Collector.now () in
  let hw =
    Designs.design_hw_with
      (Hw_layer.spec ~uncertainty:pt.Space.delta ~input_weight:pt.Space.weight
         ~perf_bound:pt.Space.bound ())
  in
  let sw =
    match pt.Space.arrangement with
    | Space.Hw_only -> None
    | Space.Sw_over_hw | Space.Hw_over_sw ->
      (* The OS controller's bounds scale proportionally, as in the
         paper's Figure 15 study. *)
      Some (Designs.design_sw_with (Sw_layer.spec ~bound:pt.Space.bound ()))
  in
  let synth_wall_s = Obs.Collector.now () -. t0 in
  Obs.Collector.record_span ~name:"sweep.synthesize" ~dur_s:synth_wall_s
    (if Obs.Collector.enabled () then
       [ ("point", Obs.Json.Int pt.Space.id) ]
     else []);
  let stack =
    match (pt.Space.arrangement, sw) with
    | Space.Sw_over_hw, Some sw -> Schemes.yukta_full_stack hw sw
    | Space.Hw_over_sw, Some sw ->
      Stack.make ~label:"yukta-rev"
        [ Schemes.hw_ssv_layer hw; Schemes.sw_ssv_layer sw ]
    | Space.Hw_only, _ -> Schemes.hw_ssv_os_heuristic_stack hw
    | (Space.Sw_over_hw | Space.Hw_over_sw), None -> assert false
  in
  let r =
    Obs.Collector.span ~name:"sweep.point" (fun () ->
        Stack.run ~max_time:p.probe.max_time ~epoch:pt.Space.epoch stack
          (probe_workloads p))
  in
  let mu =
    List.fold_left
      (fun acc (d : Design.synthesis) -> Float.max acc d.Design.mu_peak)
      hw.Design.mu_peak
      (Option.to_list sw)
  in
  let macs =
    List.fold_left
      (fun acc (d : Design.synthesis) ->
        acc + (Controller.cost d.Design.controller).Controller.multiply_accumulates)
      0
      (hw :: Option.to_list sw)
  in
  {
    Checkpoint.entry =
      {
        Frontier.point = pt;
        mu;
        exd = r.Stack.metrics.Board.Xu3.energy_delay;
        macs;
      };
    synth_wall_s;
  }

(* ------------------------------------------------------------------ *)
(* The shard driver                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  plan : plan;
  shard : shard;
  frontier : Frontier.t;
  shard_points : int;
  resumed : int;
  evaluated : int;
  synth_wall_s : float;
  checkpoint : string;
}

let default_dir = ".yukta_sweep"

let run ?pool ?(dir = default_dir) ?(shard = whole) p =
  check_shard shard;
  let fp = fingerprint p in
  let ids = shard_ids p shard in
  let file =
    Checkpoint.path ~dir ~fingerprint:fp ~shard:shard.index
      ~shards:shard.shards
  in
  let resumed_records = Checkpoint.load ~fingerprint:fp file in
  let frontier = Frontier.create () in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (r : Checkpoint.record) ->
      Hashtbl.replace seen r.Checkpoint.entry.Frontier.point.Space.id ();
      ignore (Frontier.insert frontier r.Checkpoint.entry))
    resumed_records;
  let todo = List.filter (fun id -> not (Hashtbl.mem seen id)) ids in
  let existing = Sys.file_exists file in
  let oc = Checkpoint.append_channel ~fingerprint:fp ~existing file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      (* Single-force before fan-out: warm the shared design memos so
         workers never race a lazy suspension (variant designs are then
         synthesized under Designs' own lock as they are first met). *)
      Designs.prepare ();
      let synth_wall = ref 0.0 in
      let evaluated = ref 0 in
      let reduce () (r : Checkpoint.record) =
        Checkpoint.append oc r;
        ignore (Frontier.insert frontier r.Checkpoint.entry);
        synth_wall := !synth_wall +. r.Checkpoint.synth_wall_s;
        incr evaluated
      in
      let map id =
        let r, lines =
          Obs.Collector.capture (fun () -> evaluate p (Space.point p.space id))
        in
        (r, lines)
      in
      let reduce_captured () (r, lines) =
        Obs.Collector.replay lines;
        reduce () r
      in
      (match pool with
      | Some pool ->
        Parallel.Pool.map_reduce pool ~map ~init:() ~reduce:reduce_captured
          todo
      | None -> List.iter (fun id -> reduce_captured () (map id)) todo);
      {
        plan = p;
        shard;
        frontier;
        shard_points = List.length ids;
        resumed = List.length resumed_records;
        evaluated = !evaluated;
        synth_wall_s = !synth_wall;
        checkpoint = file;
      })

(* ------------------------------------------------------------------ *)
(* Artifacts                                                           *)
(* ------------------------------------------------------------------ *)

let frontier_block p frontier =
  Obs.Json.Obj
    [
      ("fingerprint", Obs.Json.String (fingerprint p));
      ("seed", Obs.Json.Int p.seed);
      ("points", Obs.Json.Int (sample_size p));
      ("cardinality", Obs.Json.Int (Space.cardinality p.space));
      ("space", Space.to_json p.space);
      ( "probe",
        Obs.Json.Obj
          [
            ("app", Obs.Json.String p.probe.app);
            ("ginsts", Obs.Json.Float p.probe.ginsts);
            ("max_time_s", Obs.Json.Float p.probe.max_time);
          ] );
      ( "members",
        Obs.Json.List (List.map Frontier.entry_json (Frontier.members frontier))
      );
    ]

let artifact ?(smoke = false) ~jobs ~wall_s o =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "yukta.bench-sweep/v1");
      ("smoke", Obs.Json.Bool smoke);
      ("frontier", frontier_block o.plan o.frontier);
      ( "sweep",
        Obs.Json.Obj
          [
            ( "shard",
              Obs.Json.Obj
                [
                  ("index", Obs.Json.Int o.shard.index);
                  ("count", Obs.Json.Int o.shard.shards);
                ] );
            ("shard_points", Obs.Json.Int o.shard_points);
            ("resumed", Obs.Json.Int o.resumed);
            ("evaluated", Obs.Json.Int o.evaluated);
            ("frontier_size", Obs.Json.Int (Frontier.size o.frontier));
            ("checkpoint", Obs.Json.String o.checkpoint);
          ] );
      ( "bench",
        Obs.Json.Obj
          [
            ("jobs", Obs.Json.Int jobs);
            ("wall_s", Obs.Json.Float wall_s);
            ("synth_wall_s", Obs.Json.Float o.synth_wall_s);
          ] );
    ]

let merge docs =
  if docs = [] then invalid_arg "Run.merge: no documents";
  let block doc =
    match Obs.Json.member "frontier" doc with
    | Some (Obs.Json.Obj fields) -> fields
    | _ -> invalid_arg "Run.merge: document has no frontier block"
  in
  let strip fields = List.filter (fun (k, _) -> k <> "members") fields in
  let first = block (List.hd docs) in
  let reference = Obs.Json.to_string (Obs.Json.Obj (strip first)) in
  List.iteri
    (fun i doc ->
      let plan_part = Obs.Json.to_string (Obs.Json.Obj (strip (block doc))) in
      if plan_part <> reference then
        invalid_arg
          (Printf.sprintf
             "Run.merge: document %d comes from a different plan (space, \
              seed, sampling or probe differ)"
             (i + 1)))
    docs;
  let frontier = Frontier.create () in
  List.iter
    (fun doc ->
      match List.assoc_opt "members" (block doc) with
      | Some (Obs.Json.List members) ->
        List.iter
          (fun m ->
            match Frontier.entry_of_json m with
            | Some e -> ignore (Frontier.insert frontier e)
            | None -> invalid_arg "Run.merge: malformed frontier member")
          members
      | _ -> invalid_arg "Run.merge: frontier block has no members list")
    docs;
  let members =
    Obs.Json.List (List.map Frontier.entry_json (Frontier.members frontier))
  in
  Obs.Json.Obj
    (List.map
       (fun (k, v) -> if k = "members" then (k, members) else (k, v))
       first)
