(** The map-reduce sweep driver.

    A sweep is described by a {!type-plan}: the axis {!Space.t}, the sampling
    seed and count, and the {e probe} (the fixed short workload every
    candidate design is evaluated on). The {e map} phase fans the plan's
    points over a {!Parallel.Pool} — each point synthesizes its designs
    through the content-addressed [.yukta_cache/] (cache hits make
    repeated sweeps cheap) and runs the probe — and the {e reduce} phase
    folds each result, in input order, into an online {!Frontier} and an
    append-only {!Checkpoint}, so the full sweep is never materialized
    and a killed run resumes where it stopped.

    Determinism contract (DESIGN.md section 14): everything that reaches
    the frontier — point ids, synthesized designs, probe metrics,
    controller cost — is a pure function of the plan, so the emitted
    ["frontier"] block is byte-identical at any job count, across
    kill/resume, and across a sharded-then-merged versus single-shot
    run. Wall-clock quantities (synthesis time, sweep time) are reported
    separately and never enter the frontier. *)

type probe = {
  app : string;      (** Workload name (see [yukta_cli apps]). *)
  ginsts : float;    (** Probe workload size, Ginsts. *)
  max_time : float;  (** Probe horizon, simulated seconds. *)
}

type plan = {
  space : Space.t;
  seed : int;    (** Sampling seed ({!Space.sample}). *)
  points : int;  (** Requested sample size; [<= 0] or [>= cardinality]
                     sweeps the full grid. *)
  probe : probe;
}

val default_probe : probe
(** blackscholes at 60 Ginsts, 240 s horizon. *)

val smoke_probe : probe
(** blackscholes at 12 Ginsts, 60 s horizon — the CI-sized probe. *)

val plan :
  ?space:Space.t -> ?seed:int -> ?points:int -> ?probe:probe -> unit -> plan
(** Defaults: the {!Space.default} grid, seed 42, the full grid,
    {!default_probe}.
    @raise Invalid_argument on an unknown probe app or non-positive
    probe parameters. *)

val sample_size : plan -> int
(** Points the plan actually evaluates:
    [min points (Space.cardinality space)] with the full grid for
    [points <= 0]. *)

val fingerprint : plan -> string
(** Hex digest of everything that determines results: space, seed,
    sample count and probe. Checkpoints and artifacts embed it; resume
    and merge refuse a mismatch. *)

type shard = {
  index : int;   (** 1-based, [1 <= index <= shards]. *)
  shards : int;
}

val shard_ids : plan -> shard -> int list
(** The shard's point ids, ascending: the plan's sampled ids striped
    round-robin (sample position [k] lands on shard [k mod shards + 1]),
    so shard loads stay balanced whatever the sample.
    @raise Invalid_argument on an invalid shard. *)

val evaluate : plan -> Space.point -> Checkpoint.record
(** Evaluate one point: synthesize the arrangement's designs (through
    [Yukta.Designs]'s cache), run the probe at the point's epoch, and
    package the objectives. Emits [sweep.synthesize] and [sweep.point]
    wall-clock spans when the Obs collector is enabled. Pure modulo the
    design cache and the recorded wall time. *)

type outcome = {
  plan : plan;
  shard : shard;
  frontier : Frontier.t;   (** Frontier over the shard's points. *)
  shard_points : int;      (** Points assigned to this shard. *)
  resumed : int;           (** Results replayed from the checkpoint. *)
  evaluated : int;         (** Points computed by this run. *)
  synth_wall_s : float;    (** Synthesis wall time of this run's
                               evaluations (cache hits count ~0). *)
  checkpoint : string;     (** The shard's checkpoint file. *)
}

val run : ?pool:Parallel.Pool.t -> ?dir:string -> ?shard:shard -> plan -> outcome
(** Run (or resume) one shard of the plan. [dir] is the checkpoint
    directory (default [.yukta_sweep]); [shard] defaults to [1/1] (the
    whole plan). Previously checkpointed points are folded into the
    frontier without re-evaluation; remaining points fan out over
    [pool] (serial without one) and checkpoint as they complete.
    @raise Checkpoint.Mismatch when the checkpoint belongs to a
    different plan. *)

(** {1 Artifacts}

    The [yukta.bench-sweep/v1] document (schema in BENCHMARKS.md). The
    ["frontier"] block is the deterministic, comparable artifact; the
    ["sweep"] and ["bench"] blocks carry per-run metadata (shard
    layout, resume counts, wall clock) and may differ between runs that
    produced byte-identical frontiers. *)

val frontier_block : plan -> Frontier.t -> Obs.Json.t
(** The deterministic ["frontier"] block: plan echo (fingerprint, seed,
    sample size, cardinality, space, probe) plus the frontier members
    sorted by point id. *)

val artifact : ?smoke:bool -> jobs:int -> wall_s:float -> outcome -> Obs.Json.t
(** The full document for one (possibly sharded) run. *)

val merge : Obs.Json.t list -> Obs.Json.t
(** Reduce shard documents to the combined ["frontier"] block: checks
    that every document carries the same plan (byte-compared minus
    members), unions the members through a fresh frontier, and rebuilds
    the block. Merging every shard of a plan yields a block
    byte-identical to the single-shot run's, because the frontier of a
    union is the frontier of the union of per-shard frontiers.
    @raise Invalid_argument on an empty list, a document without a
    frontier block, malformed members, or mismatched plans. *)
