(** One background computation on its own domain.

    {!Pool} runs batches that block the caller until every job folds;
    this is the complementary shape a long-lived serving loop needs: a
    single computation (an online controller re-synthesis) fired off to
    a fresh domain, polled for completion between epochs without ever
    blocking, and collected the epoch it lands.

    Tasks are one-shot: spawn, poll with {!finished} (or {!peek}), then
    {!await}. Every spawned task should eventually be awaited so the
    domain is joined — {!peek}/{!await} after {!finished} never block. *)

type 'a t

val spawn : (unit -> 'a) -> 'a t
(** Run [f] on a fresh domain. Exceptions are captured and re-raised by
    {!await}/{!peek} in the caller. *)

val finished : 'a t -> bool
(** Non-blocking: has the computation completed (successfully or not)? *)

val await : 'a t -> 'a
(** Join the domain (blocking if still running) and return the result,
    re-raising the task's exception if it failed. Idempotent. *)

val peek : 'a t -> 'a option
(** [Some result] (re-raising on a failed task) if finished, [None]
    without blocking otherwise. *)
