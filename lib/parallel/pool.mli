(** A fixed-size domain pool for embarrassingly parallel evaluation
    grids.

    The pool owns [jobs] worker domains (none when [jobs = 1]) that pull
    tasks from a shared queue. {!map} is the only way work enters the
    pool; it preserves input order and surfaces worker exceptions, so a
    caller sees exactly the behaviour of [List.map] — only faster:

    - {b deterministic ordering} — results come back in input order
      regardless of which worker finished first;
    - {b exception capture} — a raising task never hangs the pool; the
      first exception (in input order) is re-raised in the caller with
      its original backtrace, after every task of the batch has settled;
    - {b serial degeneration} — a pool created with [jobs = 1] spawns no
      domains and {!map} runs in the calling domain, so serial and
      parallel callers share one code path.

    The pool itself is domain-safe; the tasks must be too. Shared lazy
    state has to be forced {e before} fan-out (concurrent [Lazy.force]
    of one suspension raises in OCaml 5) — see [Yukta.Designs.prepare]
    and the cache notes in [DESIGN.md]. *)

type t
(** A pool handle. Values of this type are safe to share between
    domains, but {!map} batches are serialized internally: one batch
    runs at a time. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains plus the calling
    domain's share of the work (the caller participates in {!map}), so
    at most [jobs] tasks run at once.

    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs] on the pool's
    domains and returns the results in input order.

    If one or more applications raise, [map] waits for the whole batch
    to settle, then re-raises the exception of the {e earliest} failing
    input (with its original backtrace). The pool remains usable. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent; {!map} after [shutdown] raises
    [Invalid_argument]. Call before process exit so no domain outlives
    the main one. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown}, also on exceptions. *)

val default_jobs : unit -> int
(** What [-j] defaults to when asked for "all cores":
    [Domain.recommended_domain_count ()]. *)
