(** A fixed-size domain pool for embarrassingly parallel evaluation
    grids and streaming fleet runs.

    The pool owns [jobs] worker domains (none when [jobs = 1]) that pull
    tasks from a shared queue. Work enters the pool through
    {!map_reduce}, a streaming ordered fold; {!map} is a thin wrapper
    that folds into a list. Both preserve the semantics of their serial
    counterparts — only faster:

    - {b deterministic ordering} — results are folded (or listed) in
      input order regardless of which worker finished first, so a fold
      into mergeable accumulators is byte-identical at any job count;
    - {b bounded memory} — {!map_reduce} streams inputs through an
      in-flight window of [4 * jobs] slots; a thousand-element batch
      never materialises a thousand results;
    - {b exception capture} — a raising task never hangs the pool; the
      first exception (in input order) is re-raised in the caller with
      its original backtrace, after every {e issued} task has settled
      (inputs beyond the in-flight window are never started);
    - {b serial degeneration} — a pool created with [jobs = 1] spawns no
      domains and runs everything inline in the calling domain, so
      serial and parallel callers share one code path.

    The pool itself is domain-safe; the tasks must be too. Shared lazy
    state has to be forced {e before} fan-out (concurrent [Lazy.force]
    of one suspension raises in OCaml 5) — see [Yukta.Designs.prepare]
    and the cache notes in [DESIGN.md]. *)

type t
(** A pool handle. Values of this type are safe to share between
    domains, but batches are serialized internally: one {!map_reduce}
    (or {!map}) runs at a time. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains plus the calling
    domain's share of the work (the caller participates in batches), so
    at most [jobs] tasks run at once.

    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val map_reduce :
  t ->
  map:('a -> 'b) ->
  init:'acc ->
  reduce:('acc -> 'b -> 'acc) ->
  'a list ->
  'acc
(** [map_reduce pool ~map ~init ~reduce xs] applies [map] to every
    element of [xs] on the pool's domains and folds each result into the
    accumulator with [reduce] {e in input order}, equivalent to
    [List.fold_left (fun acc x -> reduce acc (map x)) init xs].

    [map] runs on arbitrary domains; [reduce] always runs in the calling
    domain, one call at a time, in slot order — it needs no locking and
    may mutate the accumulator in place. At most [4 * jobs] results are
    in flight at once: input [i + 4*jobs] is not started before result
    [i] has been folded, so memory stays bounded for arbitrarily long
    batches.

    If a [map] application raises, issuance stops, every already-issued
    task settles, and the exception of the {e earliest} failing input
    re-raises with its original backtrace (later inputs may never run).
    A raising [reduce] likewise settles outstanding tasks before
    propagating. The pool remains usable afterwards. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs] on the pool's
    domains and returns the results in input order. Implemented as a
    {!map_reduce} fold into a list — exception semantics are inherited
    from it. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent; batches after [shutdown] raise
    [Invalid_argument]. Call before process exit so no domain outlives
    the main one. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown}, also on exceptions. *)

val default_jobs : unit -> int
(** What [-j] defaults to when asked for "all cores":
    [Domain.recommended_domain_count ()]. *)
