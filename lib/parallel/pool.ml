(* A fixed-size domain pool. Workers pull thunks from one shared queue;
   Pool.map writes results into a pre-sized slot array, so ordering is
   by input index no matter which domain finishes first, and exceptions
   are carried as values until the whole batch has settled. *)

type t = {
  jobs : int;
  mutex : Mutex.t;                      (* Guards queue + closed. *)
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  batch : Mutex.t;                      (* One [map] batch at a time. *)
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed: exit *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      batch = Mutex.create ();
    }
  in
  (* The calling domain participates in [map], so [jobs - 1] extra
     domains give [jobs]-way parallelism. *)
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () = Domain.recommended_domain_count ()

(* The caller drains the queue alongside the workers, then waits for
   in-flight tasks running on other domains. *)
let help t =
  let rec go () =
    Mutex.lock t.mutex;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      go ()
    end
  in
  go ()

let map t f xs =
  if t.closed then invalid_arg "Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | xs when t.jobs = 1 -> List.map f xs
  | xs ->
    Mutex.lock t.batch;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.batch) @@ fun () ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let task i () =
      let r =
        match f arr.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      (* Plain write to a private slot, published to the caller by the
         seq-cst decrement below. *)
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.signal all_done;
        Mutex.unlock done_mutex
      end
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    help t;
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    let settled =
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results)
    in
    (* Re-raise the earliest failure only after the whole batch settled,
       so a raising task can never strand its siblings. *)
    List.iter
      (function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
      settled;
    List.map (function Ok v -> v | Error _ -> assert false) settled
