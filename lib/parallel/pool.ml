(* A fixed-size domain pool. Workers pull thunks from one shared queue.
   Pool.map_reduce streams tasks through a bounded in-flight window and
   folds each result into the caller's accumulator in input order, so a
   batch of any length holds at most O(window) results at once and the
   fold is byte-identical at any job count. Exceptions are carried as
   values and the earliest failing input re-raises in the caller. *)

type t = {
  jobs : int;
  mutex : Mutex.t;                      (* Guards queue + closed. *)
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  batch : Mutex.t;                      (* One batch at a time. *)
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed: exit *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      batch = Mutex.create ();
    }
  in
  (* The calling domain participates in batches, so [jobs - 1] extra
     domains give [jobs]-way parallelism. *)
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () = Domain.recommended_domain_count ()

(* The caller drains the queue alongside the workers. *)
let help t =
  let rec go () =
    Mutex.lock t.mutex;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      go ()
    end
  in
  go ()

(* In-flight window: results not yet folded live in a ring of this many
   slots, bounding memory independently of batch length while keeping
   every domain busy. *)
let window t = 4 * t.jobs

let map_reduce t ~map:f ~init ~reduce xs =
  if t.closed then invalid_arg "Pool.map_reduce: pool is shut down";
  match xs with
  | [] -> init
  | xs when t.jobs = 1 ->
      List.fold_left (fun acc x -> reduce acc (f x)) init xs
  | xs ->
      Mutex.lock t.batch;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.batch) @@ fun () ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let w = min n (window t) in
      (* ring.(i mod w) holds input i's settled result until the caller
         folds it; issuance is gated so in-flight inputs occupy distinct
         slots. settled counts finished tasks (guarded by slot_mutex). *)
      let ring = Array.make w None in
      let slot_mutex = Mutex.create () in
      let slot_ready = Condition.create () in
      let settled = ref 0 in
      let task i () =
        let r =
          match f arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock slot_mutex;
        ring.(i mod w) <- Some r;
        settled := !settled + 1;
        Condition.broadcast slot_ready;
        Mutex.unlock slot_mutex
      in
      let issued = ref 0 in
      let issue_until k =
        let k = min k n in
        if !issued < k then begin
          Mutex.lock t.mutex;
          while !issued < k do
            Queue.push (task !issued) t.queue;
            incr issued
          done;
          Condition.broadcast t.work_available;
          Mutex.unlock t.mutex
        end
      in
      let run_one_queued () =
        Mutex.lock t.mutex;
        if Queue.is_empty t.queue then begin
          Mutex.unlock t.mutex;
          false
        end
        else begin
          let task = Queue.pop t.queue in
          Mutex.unlock t.mutex;
          task ();
          true
        end
      in
      issue_until w;
      (* Whatever exits the fold (completion, a task failure, a raising
         [reduce]), no task of this batch may outlive it: run anything
         still queued, then wait out the in-flight stragglers. *)
      let cleanup () =
        help t;
        Mutex.lock slot_mutex;
        while !settled < !issued do
          Condition.wait slot_ready slot_mutex
        done;
        Mutex.unlock slot_mutex
      in
      Fun.protect ~finally:cleanup @@ fun () ->
      let acc = ref init in
      let cursor = ref 0 in
      let failure = ref None in
      while !cursor < n && !failure = None do
        let slot = !cursor mod w in
        Mutex.lock slot_mutex;
        let r = ring.(slot) in
        if r <> None then ring.(slot) <- None;
        Mutex.unlock slot_mutex;
        match r with
        | Some (Ok v) ->
            (* Refill the freed slot before folding so domains stay busy
               while [reduce] runs in the caller. *)
            incr cursor;
            issue_until (!cursor + w);
            acc := reduce !acc v
        | Some (Error e) ->
            (* Earliest input in fold order: stop issuing and re-raise. *)
            failure := Some e
        | None ->
            (* Not settled yet: help with queued work, or sleep until a
               worker publishes a slot. The cursor's task is always
               issued, so someone is running it. *)
            if not (run_one_queued ()) then begin
              Mutex.lock slot_mutex;
              while ring.(slot) = None do
                Condition.wait slot_ready slot_mutex
              done;
              Mutex.unlock slot_mutex
            end
      done;
      match !failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> !acc

let map t f xs =
  if t.closed then invalid_arg "Pool.map: pool is shut down";
  List.rev (map_reduce t ~map:f ~init:[] ~reduce:(fun acc v -> v :: acc) xs)
