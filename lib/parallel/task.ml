(* A single background computation on its own domain, with non-blocking
   completion polling. Pool is built for batches that block the caller;
   a serving loop needs the opposite — fire one re-synthesis off, keep
   stepping epochs, and collect the result the epoch it lands. *)

type 'a t = {
  result : ('a, exn) result option Atomic.t;
  domain : unit Domain.t;
  mutable joined : bool;
}

let spawn f =
  let result = Atomic.make None in
  let domain =
    Domain.spawn (fun () ->
        let r = try Ok (f ()) with exn -> Error exn in
        Atomic.set result (Some r))
  in
  { result; domain; joined = false }

let finished t = Atomic.get t.result <> None

let await t =
  if not t.joined then begin
    Domain.join t.domain;
    t.joined <- true
  end;
  match Atomic.get t.result with
  | Some (Ok v) -> v
  | Some (Error exn) -> raise exn
  | None -> assert false (* join implies the worker stored its result *)

let peek t = if finished t then Some (await t) else None
