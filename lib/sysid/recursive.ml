open Linalg

(* Recursive least squares over the same regressor as [Arx.fit]:

     phi(t) = [y(t-1); ...; y(t-na); u(t); ...; u(t-nb+1)]

   with parameter matrix theta (cols x ny, the batch layout) and
   covariance P (cols x cols). With [delta = 1e-6] (so P0 = delta^-1 I)
   and forgetting 1.0 this computes exactly the ridge solution
   (Phi^T Phi + delta I)^-1 Phi^T Y that [Arx.fit] solves by QR, one
   rank-one update per sample — which is what makes the batch fit the
   ground truth for the convergence property test. *)

type t = {
  na : int;
  nb : int;
  ny : int;
  nu : int;
  lambda : float;
  delta : float;
  theta : Mat.t; (* cols x ny, batch layout. *)
  mutable p : Mat.t; (* cols x cols inverse-Gram estimate. *)
  (* History, newest first: ys.(0) = y(t-1), us.(0) = u(t-1). *)
  ys : Vec.t array;
  us : Vec.t array;
  mutable seen : int; (* Observations absorbed (history pushes). *)
  mutable updates : int; (* RLS updates performed. *)
  (* Scratch, reused across updates. *)
  phi : Vec.t;
  pphi : Vec.t;
  gain : Vec.t;
  err : Vec.t;
}

let cols t = (t.na * t.ny) + (t.nb * t.nu)

let create ?(lambda = 1.0) ?(delta = 1e-6) ~na ~nb ~ny ~nu () =
  if na < 0 || nb < 1 then
    invalid_arg "Recursive.create: need na >= 0, nb >= 1";
  if ny < 1 || nu < 1 then
    invalid_arg "Recursive.create: need ny >= 1, nu >= 1";
  if lambda <= 0.0 || lambda > 1.0 then
    invalid_arg "Recursive.create: forgetting factor must be in (0, 1]";
  if delta <= 0.0 then invalid_arg "Recursive.create: delta must be positive";
  let c = (na * ny) + (nb * nu) in
  {
    na;
    nb;
    ny;
    nu;
    lambda;
    delta;
    theta = Mat.create c ny;
    p = Mat.scalar c (1.0 /. delta);
    ys = Array.init na (fun _ -> Vec.create ny);
    us = Array.init (max 0 (nb - 1)) (fun _ -> Vec.create nu);
    seen = 0;
    updates = 0;
    phi = Vec.create c;
    pphi = Vec.create c;
    gain = Vec.create c;
    err = Vec.create ny;
  }

let samples t = t.updates

let warm t = t.seen >= max t.na (t.nb - 1)

(* Shift a newest-first history one slot and install [v] at the front.
   Slots are owned buffers; values are copied in, never aliased. *)
let push hist v =
  let n = Array.length hist in
  if n > 0 then begin
    let last = hist.(n - 1) in
    for i = n - 1 downto 1 do
      hist.(i) <- hist.(i - 1)
    done;
    Array.blit v 0 last 0 (Vec.dim last);
    hist.(0) <- last
  end

(* phi = [y(t-1)..y(t-na); u(t); u(t-1)..u(t-nb+1)] from history + the
   current input — same layout as [Arx.regressor]. *)
let build_regressor t ~(u : Vec.t) =
  for i = 0 to t.na - 1 do
    Array.blit t.ys.(i) 0 t.phi (i * t.ny) t.ny
  done;
  let base = t.na * t.ny in
  Array.blit u 0 t.phi base t.nu;
  for j = 1 to t.nb - 1 do
    Array.blit t.us.(j - 1) 0 t.phi (base + (j * t.nu)) t.nu
  done

let observe t ~(u : Vec.t) ~(y : Vec.t) =
  if Vec.dim u <> t.nu then invalid_arg "Recursive.observe: bad u dimension";
  if Vec.dim y <> t.ny then invalid_arg "Recursive.observe: bad y dimension";
  let result =
    if not (warm t) then None
    else begin
      build_regressor t ~u;
      let c = cols t in
      (* Prediction error with the pre-update parameters. *)
      for ch = 0 to t.ny - 1 do
        let acc = ref 0.0 in
        for k = 0 to c - 1 do
          acc := !acc +. (Mat.get t.theta k ch *. t.phi.(k))
        done;
        t.err.(ch) <- y.(ch) -. !acc
      done;
      Mat.mul_vec_into ~dst:t.pphi t.p t.phi;
      let denom = ref t.lambda in
      for k = 0 to c - 1 do
        denom := !denom +. (t.phi.(k) *. t.pphi.(k))
      done;
      for k = 0 to c - 1 do
        t.gain.(k) <- t.pphi.(k) /. !denom
      done;
      (* theta += K e^T *)
      for k = 0 to c - 1 do
        let g = t.gain.(k) in
        for ch = 0 to t.ny - 1 do
          Mat.set t.theta k ch (Mat.get t.theta k ch +. (g *. t.err.(ch)))
        done
      done;
      (* P = (P - K (P phi)^T) / lambda, re-symmetrized so rounding never
         accumulates into an asymmetric (hence possibly indefinite) P. *)
      let inv_l = 1.0 /. t.lambda in
      for r = 0 to c - 1 do
        for cc = r to c - 1 do
          let v =
            (Mat.get t.p r cc -. (t.gain.(r) *. t.pphi.(cc))) *. inv_l
          in
          let v' =
            (Mat.get t.p cc r -. (t.gain.(cc) *. t.pphi.(r))) *. inv_l
          in
          let s = 0.5 *. (v +. v') in
          Mat.set t.p r cc s;
          Mat.set t.p cc r s
        done
      done;
      t.updates <- t.updates + 1;
      let sq = ref 0.0 in
      for ch = 0 to t.ny - 1 do
        sq := !sq +. (t.err.(ch) *. t.err.(ch))
      done;
      Some (Float.sqrt (!sq /. float_of_int t.ny))
    end
  in
  push t.ys y;
  push t.us u;
  t.seen <- t.seen + 1;
  result

let warm_start ?delta t (m : Arx.model) =
  if m.Arx.na <> t.na || m.Arx.nb <> t.nb || m.Arx.ny <> t.ny
     || m.Arx.nu <> t.nu
  then invalid_arg "Recursive.warm_start: model shape mismatch";
  (* Pack the coefficient matrices into the batch theta layout — the
     exact inverse of [model] below. *)
  for i = 0 to t.na - 1 do
    for ch = 0 to t.ny - 1 do
      for j = 0 to t.ny - 1 do
        Mat.set t.theta ((i * t.ny) + j) ch (Mat.get m.Arx.a.(i) ch j)
      done
    done
  done;
  let base = t.na * t.ny in
  for j = 0 to t.nb - 1 do
    for ch = 0 to t.ny - 1 do
      for k = 0 to t.nu - 1 do
        Mat.set t.theta (base + (j * t.nu) + k) ch (Mat.get m.Arx.b.(j) ch k)
      done
    done
  done;
  let d = Option.value delta ~default:t.delta in
  if d <= 0.0 then invalid_arg "Recursive.warm_start: delta must be positive";
  t.p <- Mat.scalar (cols t) (1.0 /. d)

let reset_covariance ?delta ?(only_inputs = false) t =
  let d = Option.value delta ~default:t.delta in
  if d <= 0.0 then
    invalid_arg "Recursive.reset_covariance: delta must be positive";
  if not only_inputs then t.p <- Mat.scalar (cols t) (1.0 /. d)
  else begin
    (* Re-inflate only the input-coefficient (B) block. The
       output-history (A) rows get exactly zero covariance, so the
       RLS gain has zero entries there and the dynamics stay pinned:
       all the update energy lands in the input gains. This is the
       structured reset for gain-type plant drifts — closed-loop data
       carries too little excitation to re-learn dynamics, but a
       pinned-dynamics gain correction is well posed. Zeros are
       preserved by the covariance update (P phi has zero A entries),
       so the pin survives subsequent samples. *)
    let c = cols t in
    let base = t.na * t.ny in
    let p = Mat.create c c in
    for k = base to c - 1 do
      Mat.set p k k (1.0 /. d)
    done;
    t.p <- p
  end

(* Unpack theta into coefficient matrices exactly as [Arx.fit_on] does,
   so a converged recursive model and a batch model are comparable
   entry-for-entry. *)
let model t =
  let ny = t.ny and nu = t.nu in
  let a =
    Array.init t.na (fun i ->
        Mat.transpose (Mat.sub_matrix t.theta (i * ny) 0 ny ny))
  in
  let b =
    Array.init t.nb (fun j ->
        Mat.transpose (Mat.sub_matrix t.theta ((t.na * ny) + (j * nu)) 0 nu ny))
  in
  { Arx.na = t.na; nb = t.nb; ny; nu; a; b }

(* ------------------------------------------------------------------ *)
(* Drift detection                                                     *)
(* ------------------------------------------------------------------ *)

module Drift = struct
  (* Self-calibrating: the first [warmup] residuals establish a baseline
     level, and drift means the residual EWMA exceeding [ratio] times
     that baseline. No absolute threshold — a session on a clean plant
     never trips regardless of the scheme's native residual scale. *)
  type detector = {
    alpha : float;
    warmup : int;
    ratio : float;
    floor : float;
    mutable n : int;
    mutable sum : float; (* Baseline accumulator during warmup. *)
    mutable base : float; (* Calibrated baseline (NaN until set). *)
    mutable avg : float; (* Residual EWMA. *)
    mutable is_tripped : bool;
  }

  let create ?(alpha = 0.05) ?(warmup = 40) ?(ratio = 3.0) ?(floor = 1e-9) ()
      =
    if alpha <= 0.0 || alpha > 1.0 then
      invalid_arg "Drift.create: alpha must be in (0, 1]";
    if warmup < 1 then invalid_arg "Drift.create: warmup must be >= 1";
    if ratio <= 1.0 then invalid_arg "Drift.create: ratio must exceed 1";
    {
      alpha;
      warmup;
      ratio;
      floor;
      n = 0;
      sum = 0.0;
      base = Float.nan;
      avg = 0.0;
      is_tripped = false;
    }

  let reset d =
    d.n <- 0;
    d.sum <- 0.0;
    d.base <- Float.nan;
    d.avg <- 0.0;
    d.is_tripped <- false

  let observe d err =
    d.avg <-
      (if d.n = 0 then err else ((1.0 -. d.alpha) *. d.avg) +. (d.alpha *. err));
    d.n <- d.n + 1;
    if d.n <= d.warmup then begin
      d.sum <- d.sum +. err;
      if d.n = d.warmup then
        d.base <- Float.max d.floor (d.sum /. float_of_int d.warmup);
      false
    end
    else begin
      let trip = (not d.is_tripped) && d.avg > d.ratio *. d.base in
      if trip then d.is_tripped <- true;
      trip
    end

  let tripped d = d.is_tripped

  let level d = d.avg

  let baseline d = d.base

  let calibrated d = d.n >= d.warmup
end
