(** Excitation signal generators for system identification.

    System identification (Ljung) needs inputs that are persistently
    exciting: they must visit the admissible settings often enough, across
    enough frequencies, for least squares to recover the dynamics. For
    computer-system knobs (discrete frequency/core-count levels) the
    natural choice is a multilevel pseudo-random sequence with a hold time,
    which is what the paper's training runs effectively apply. *)

type t = {
  seed : int;
  hold : int;  (** Steps each level is held; larger hold excites lower
                   frequencies. *)
}

val default : t
(** Seed 7, hold 4 — the training-run excitation the default
    [Yukta.Designs] records are generated with. *)

val multilevel : t -> levels:float array -> length:int -> Linalg.Vec.t
(** Random piecewise-constant sequence over the given levels. *)

val prbs : t -> low:float -> high:float -> length:int -> Linalg.Vec.t
(** Two-level pseudo-random binary sequence. *)

val channels :
  t -> levels:float array array -> length:int -> Linalg.Vec.t array
(** One independent multilevel sequence per channel; result is indexed by
    time, each element a vector across channels (the layout consumed by
    {!Arx.fit}). *)
