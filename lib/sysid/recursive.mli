(** Recursive (online) ARX estimation with exponential forgetting.

    The same model and regressor layout as {!Arx}, updated one sample at
    a time by recursive least squares so a long-lived serving session
    can track the plant without re-fitting over the full record. With
    forgetting factor [1.0] and the default [delta] the estimate after a
    record equals the batch ridge fit [Arx.fit] computes over that
    record (same regularizer, different factorization) — the property
    the test suite pins. Forgetting [< 1] discounts history with
    half-life [ln 2 / ln (1/lambda)] samples, which is what lets the
    estimate follow a drifting plant.

    {!Drift} turns the per-sample prediction errors into a drift
    verdict: it calibrates a baseline residual level on the session's
    own early samples, then trips when the residual EWMA exceeds a
    multiple of that baseline — scale-free, so clean sessions never trip
    no matter the scheme's native error magnitude. *)

type t

val create :
  ?lambda:float -> ?delta:float -> na:int -> nb:int -> ny:int -> nu:int ->
  unit -> t
(** [lambda] (default [1.0]) is the forgetting factor in [(0, 1]];
    [delta] (default [1e-6]) the ridge prior: the covariance starts at
    [delta^-1 I], matching {!Arx.fit}'s regularizer so forgetting [1.0]
    reproduces the batch fit.
    @raise Invalid_argument on out-of-range parameters. *)

val observe : t -> u:Linalg.Vec.t -> y:Linalg.Vec.t -> float option
(** Absorb one sample: input [u(t)] and the output [y(t)] it produced.
    Returns the pre-update one-step prediction error (RMS across output
    channels), or [None] during the first [max na (nb-1)] samples while
    the regressor history fills — the same samples {!Arx.fit} skips.
    @raise Invalid_argument on dimension mismatch. *)

val model : t -> Arx.model
(** The current estimate, unpacked into {!Arx.model} coefficient
    matrices (zeros before any update — the ridge prior). *)

val samples : t -> int
(** RLS updates absorbed so far (excludes warm-up samples). *)

val warm : t -> bool
(** Whether the regressor history is full, i.e. the next {!observe}
    will update. *)

val warm_start : ?delta:float -> t -> Arx.model -> unit
(** Install a prior estimate (e.g. the offline batch fit) as the
    starting parameters, with the covariance set to [delta^-1 I]
    (default: the creation [delta]). A warm-started estimator predicts
    with the prior from the first sample and only needs to learn the
    {e deviation} from it — which is what makes closed-loop adaptation
    workable: steady operation carries too little excitation to
    identify a full model from scratch, but plenty to correct a gain.
    @raise Invalid_argument on a shape mismatch or [delta <= 0]. *)

val reset_covariance : ?delta:float -> ?only_inputs:bool -> t -> unit
(** Re-inflate the covariance to [delta^-1 I] (default: the creation
    [delta]) while keeping the parameter estimate — standard practice
    after a detected plant change to let the estimate move fast again.

    With [only_inputs] (default [false]) only the input-coefficient
    (B) block is re-inflated and the output-history (A) block is
    zeroed, pinning the dynamics at the current estimate: the
    structured reset for gain-type drifts, where closed-loop data
    cannot support re-learning dynamics but easily corrects input
    gains. The pin is permanent until a later full reset re-inflates
    the A block.
    @raise Invalid_argument when [delta <= 0]. *)

(** Prediction-error drift detector. *)
module Drift : sig
  type detector

  val create :
    ?alpha:float -> ?warmup:int -> ?ratio:float -> ?floor:float -> unit ->
    detector
  (** [alpha] (default [0.05]) is the residual EWMA coefficient;
      [warmup] (default [40]) how many residuals calibrate the baseline;
      [ratio] (default [3.0]) the trip multiple; [floor] (default
      [1e-9]) the minimum baseline, guarding exactly-zero residuals.
      @raise Invalid_argument on out-of-range parameters. *)

  val observe : detector -> float -> bool
  (** Feed one residual; [true] exactly when this sample trips the
      detector (subsequent samples return [false] until {!reset}). *)

  val tripped : detector -> bool

  val level : detector -> float
  (** Current residual EWMA. *)

  val baseline : detector -> float
  (** Calibrated baseline ([nan] until warm-up completes). *)

  val calibrated : detector -> bool

  val reset : detector -> unit
  (** Forget everything, including the baseline — called after a
      controller swap so the detector re-calibrates against the new
      closed loop. *)
end
