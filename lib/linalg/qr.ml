type factors = { q : Mat.t; r : Mat.t }

(* Reflector application on the flat data array: one add per element
   instead of a bounds-checked [Mat.get] with an index multiply. The
   accumulation order (row index ascending) matches the naive loops
   these replaced, so factorizations are bit-identical. *)

(* w <- H w on rows [k..] across columns [k..jmax], H = I - 2 v v^T. *)
let apply_reflector_left w ~k ~jmax (v : float array) =
  let d = w.Mat.data and cols = w.Mat.cols in
  let len = Array.length v in
  for j = k to jmax do
    let base = (k * cols) + j in
    let dot = ref 0.0 in
    for i = 0 to len - 1 do
      dot :=
        !dot +. (Array.unsafe_get v i *. Array.unsafe_get d (base + (i * cols)))
    done;
    let d2 = 2.0 *. !dot in
    for i = 0 to len - 1 do
      let idx = base + (i * cols) in
      Array.unsafe_set d idx
        (Array.unsafe_get d idx -. (d2 *. Array.unsafe_get v i))
    done
  done

(* q <- q H: every row of q corrected over columns [k..k+len-1]. *)
let apply_reflector_right q ~k (v : float array) =
  let d = q.Mat.data and cols = q.Mat.cols in
  let len = Array.length v in
  for i = 0 to q.Mat.rows - 1 do
    let base = (i * cols) + k in
    let dot = ref 0.0 in
    for l = 0 to len - 1 do
      dot := !dot +. (Array.unsafe_get d (base + l) *. Array.unsafe_get v l)
    done;
    let d2 = 2.0 *. !dot in
    for l = 0 to len - 1 do
      Array.unsafe_set d (base + l)
        (Array.unsafe_get d (base + l) -. (d2 *. Array.unsafe_get v l))
    done
  done

(* Householder QR. We accumulate the reflectors into an explicit Q because
   the matrices in this project are small (tens of rows), where clarity
   beats the usual packed-reflector storage. *)
let householder_triangularize a =
  let m = a.Mat.rows and n = a.Mat.cols in
  let r = Mat.copy a in
  let q = Mat.identity m in
  for k = 0 to min (m - 1) n - 1 do
    (* Build the reflector that zeroes column k below the diagonal. *)
    let x = Array.init (m - k) (fun i -> Mat.get r (k + i) k) in
    let normx = Vec.norm2 x in
    if normx > 0.0 then begin
      let alpha = if x.(0) >= 0.0 then -.normx else normx in
      let v = Array.copy x in
      v.(0) <- v.(0) -. alpha;
      let vnorm = Vec.norm2 v in
      if vnorm > 1e-300 then begin
        let v = Vec.scale (1.0 /. vnorm) v in
        apply_reflector_left r ~k ~jmax:(n - 1) v;
        apply_reflector_right q ~k v
      end
    end
  done;
  (* Clean tiny subdiagonal residue for exact triangularity. *)
  for i = 0 to m - 1 do
    for j = 0 to min (i - 1) (n - 1) do
      Mat.set r i j 0.0
    done
  done;
  (q, r)

let factorize_full a =
  let q, r = householder_triangularize a in
  { q; r }

let factorize a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m < n then invalid_arg "Qr.factorize: requires rows >= cols";
  let q, r = householder_triangularize a in
  { q = Mat.sub_matrix q 0 0 m n; r = Mat.sub_matrix r 0 0 n n }

(* Householder elimination on the augmented matrix [a | rhs]: reflectors are
   computed from the first [n] columns only and applied across, leaving
   [R | Q^T rhs] without ever forming Q. This keeps least squares O(m n^2)
   for the tall regression matrices of system identification. *)
let triangularize_augmented a rhs =
  let m = a.Mat.rows and n = a.Mat.cols in
  if rhs.Mat.rows <> m then
    invalid_arg "Qr: right-hand side row mismatch";
  let w = Mat.hcat a rhs in
  let total = w.Mat.cols in
  for k = 0 to min (m - 1) n - 1 do
    let x = Array.init (m - k) (fun i -> Mat.get w (k + i) k) in
    let normx = Vec.norm2 x in
    if normx > 0.0 then begin
      let alpha = if x.(0) >= 0.0 then -.normx else normx in
      let v = Array.copy x in
      v.(0) <- v.(0) -. alpha;
      let vnorm = Vec.norm2 v in
      if vnorm > 1e-300 then begin
        let v = Vec.scale (1.0 /. vnorm) v in
        apply_reflector_left w ~k ~jmax:(total - 1) v
      end
    end
  done;
  (Mat.sub_matrix w 0 0 n n, Mat.sub_matrix w 0 n n (total - n))

let back_substitute r y =
  let n = r.Mat.cols in
  let x = Vec.create n in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get r i j *. x.(j))
    done;
    let d = Mat.get r i i in
    if Float.abs d <= 1e-13 *. Float.max 1.0 (Mat.max_abs r) then
      raise Lu.Singular;
    x.(i) <- !acc /. d
  done;
  x

let solve_least_squares a b =
  let r, qtb = triangularize_augmented a (Mat.of_vec_col b) in
  back_substitute r (Mat.col qtb 0)

let solve_least_squares_mat a b =
  let r, qtb = triangularize_augmented a b in
  let x = Mat.create a.Mat.cols b.Mat.cols in
  for j = 0 to b.Mat.cols - 1 do
    Mat.set_col x j (back_substitute r (Mat.col qtb j))
  done;
  x

let orthonormal_columns ?(tol = 1e-8) q =
  let gram = Mat.mul (Mat.transpose q) q in
  Mat.approx_equal ~tol gram (Mat.identity q.Mat.cols)
