(** Dense real vectors.

    A thin layer over [float array] with the numerical operations the rest of
    the library needs. All operations allocate fresh vectors unless the name
    ends in [_inplace]. Dimension mismatches raise [Invalid_argument]. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is the vector whose [i]-th entry is [f i]. *)

val dim : t -> int
(** Number of entries. *)

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val ones : int -> t
(** All-ones vector. *)

val basis : int -> int -> t
(** [basis n i] is the [i]-th canonical basis vector of dimension [n]. *)

val add : t -> t -> t

val sub : t -> t -> t

val copy_into : dst:t -> t -> unit
(** [copy_into ~dst a] overwrites [dst] with [a]. *)

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst a b]: [dst <- a + b]. [dst] may alias [a] or [b]. *)

val sub_into : dst:t -> t -> t -> unit
(** [sub_into ~dst a b]: [dst <- a - b]. [dst] may alias [a] or [b]. *)

val scale_into : dst:t -> float -> t -> unit
(** [scale_into ~dst s a]: [dst <- s*a]. [dst] may alias [a]. *)

val scale : float -> t -> t

val neg : t -> t

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm, computed without overflow for large entries. *)

val norm_inf : t -> float

val norm1 : t -> float

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val max_abs_index : t -> int
(** Index of the entry with largest absolute value. *)

val concat : t -> t -> t

val slice : t -> int -> int -> t
(** [slice v pos len] is the sub-vector of [len] entries starting at [pos]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entry-wise comparison with absolute tolerance [tol] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
