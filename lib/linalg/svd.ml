(* One-sided Jacobi SVD: orthogonalize the columns of a working copy of
   [a] with plane rotations accumulated into [v]; at convergence the column
   norms are the singular values.

   The sweep kernel operates on the TRANSPOSE of the working matrix, so
   each column of the working matrix is a contiguous row and the inner
   loops are stride-1.

   Two refinements over the textbook cyclic method:

   - Cached column norms. Each sweep starts by computing every column's
     squared norm once; rotations update the two affected entries in
     closed form (the rotation is orthogonal, so alpha' + beta' =
     alpha + beta and both have two-term expressions). The per-pair inner
     loop then reads only the mixed product gamma — one fused
     multiply-add stream instead of three.

   - Threshold ordering. Early sweeps only rotate pairs whose relative
     coupling |gamma| / sqrt(alpha beta) exceeds a per-sweep threshold
     (1e-4, then 1e-9, then the convergence tolerance 1e-14 from sweep 3
     on). Rotating a nearly-orthogonal pair costs a full O(m) pass and
     buys almost nothing while large couplings remain; deferring them
     lets the big rotations shrink the off-diagonal mass first, and on
     the nearly-diagonal iterates that D-K scaling loops produce, whole
     sweeps reduce to the gamma scan with no rotation work at all.
     Convergence is always judged against the final tolerance, never the
     sweep's looser rotation threshold, so the result is as converged as
     the textbook schedule's. *)

let calls_metric = Obs.Metrics.counter "svd.calls"
let sweeps_metric = Obs.Metrics.counter "svd.sweeps"
let unconverged_metric = Obs.Metrics.counter "svd.unconverged"

type sweep_outcome = { sweeps : int; converged : bool }

let convergence_eps = 1e-14

(* Rotation threshold for a given 1-based sweep index: loose on the
   first sweeps, the convergence tolerance from sweep 3 on. *)
let sweep_threshold sweep =
  if sweep = 1 then 1e-4 else if sweep = 2 then 1e-9 else convergence_eps

let note_outcome ~rows ~cols outcome =
  if Obs.Collector.enabled () then begin
    Obs.Metrics.incr calls_metric;
    Obs.Metrics.incr ~by:outcome.sweeps sweeps_metric;
    if not outcome.converged then begin
      Obs.Metrics.incr unconverged_metric;
      Obs.Collector.debug ~name:"svd.unconverged"
        [
          ("rows", Obs.Json.Int rows);
          ("cols", Obs.Json.Int cols);
          ("sweeps", Obs.Json.Int outcome.sweeps);
        ]
    end
  end;
  outcome

(* [wt] is n x m: row j is column j of the m x n working matrix. [v]
   (n x n), when given, accumulates the right rotations; the rotations
   applied to [wt] never read [v], so running with [v = None] yields the
   same [wt] — and therefore the same singular values — for callers that
   only need them. *)
let jacobi_sweeps ?(max_sweeps = 60) ?v wt =
  let n = wt.Mat.rows and m = wt.Mat.cols in
  let wd = wt.Mat.data in
  let eps = convergence_eps in
  let norms2 = Array.make (max n 1) 0.0 in
  let converged = ref false in
  let sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    let tau = sweep_threshold !sweeps in
    (* Fresh squared norms each sweep: the in-rotation updates below are
       exact in real arithmetic but drift in floats; re-basing once per
       sweep keeps the cached values honest. *)
    for p = 0 to n - 1 do
      let pb = p * m in
      let acc = ref 0.0 in
      for i = 0 to m - 1 do
        let x = Array.unsafe_get wd (pb + i) in
        acc := !acc +. (x *. x)
      done;
      norms2.(p) <- !acc
    done;
    for p = 0 to n - 2 do
      let pb = p * m in
      for q = p + 1 to n - 1 do
        let qb = q * m in
        let alpha = Array.unsafe_get norms2 p
        and beta = Array.unsafe_get norms2 q in
        let gamma = ref 0.0 in
        for i = 0 to m - 1 do
          gamma :=
            !gamma
            +. (Array.unsafe_get wd (pb + i) *. Array.unsafe_get wd (qb + i))
        done;
        let gamma = !gamma in
        let root = sqrt (alpha *. beta) in
        let limit = eps *. root in
        if Float.abs gamma > limit && limit > 0.0 then begin
          converged := false;
          if Float.abs gamma > tau *. root then begin
            let zeta = (beta -. alpha) /. (2.0 *. gamma) in
            let t =
              let sign = if zeta >= 0.0 then 1.0 else -1.0 in
              sign /. (Float.abs zeta +. sqrt (1.0 +. (zeta *. zeta)))
            in
            let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
            let s = c *. t in
            for i = 0 to m - 1 do
              let wip = Array.unsafe_get wd (pb + i)
              and wiq = Array.unsafe_get wd (qb + i) in
              Array.unsafe_set wd (pb + i) ((c *. wip) -. (s *. wiq));
              Array.unsafe_set wd (qb + i) ((s *. wip) +. (c *. wiq))
            done;
            (* Closed-form norm updates for the rotated pair. *)
            let cc = c *. c and ss = s *. s and cs2 = 2.0 *. c *. s in
            norms2.(p) <- (cc *. alpha) -. (cs2 *. gamma) +. (ss *. beta);
            norms2.(q) <- (ss *. alpha) +. (cs2 *. gamma) +. (cc *. beta);
            (match v with
            | None -> ()
            | Some v ->
              let vd = v.Mat.data in
              for i = 0 to n - 1 do
                let r = i * n in
                let vip = Array.unsafe_get vd (r + p)
                and viq = Array.unsafe_get vd (r + q) in
                Array.unsafe_set vd (r + p) ((c *. vip) -. (s *. viq));
                Array.unsafe_set vd (r + q) ((s *. vip) +. (c *. viq))
              done)
          end
        end
      done
    done
  done;
  note_outcome ~rows:m ~cols:n { sweeps = !sweeps; converged = !converged }

(* Singular values of the orthogonalized working matrix: norms of its
   columns = norms of [wt]'s rows, descending, with the sort permutation
   returned so [decompose] can reorder u/v columns identically. *)
let sorted_norms wt =
  let n = wt.Mat.rows in
  let s = Array.init n (fun j -> Vec.norm2 (Mat.row wt j)) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare s.(j) s.(i)) order;
  (s, order)

let rec decompose ?max_sweeps a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m >= n then begin
    let wt = Mat.transpose a in
    let v = Mat.identity n in
    let (_ : sweep_outcome) = jacobi_sweeps ?max_sweeps ~v wt in
    let s, order = sorted_norms wt in
    let sorted_s = Array.map (fun i -> s.(i)) order in
    let u = Mat.create m n in
    let vs = Mat.create n n in
    Array.iteri
      (fun out_j in_j ->
        let sigma = s.(in_j) in
        let col = Mat.row wt in_j in
        let ucol =
          if sigma > 1e-300 then Vec.scale (1.0 /. sigma) col
          else Vec.basis m (min out_j (m - 1))
        in
        Mat.set_col u out_j ucol;
        Mat.set_col vs out_j (Mat.col v in_j))
      order;
    (u, sorted_s, vs)
  end
  else begin
    (* SVD of the transpose, swapping the roles of u and v. *)
    let u, s, v = decompose ?max_sweeps (Mat.transpose a) in
    (v, s, u)
  end

(* Values-only path: same rotations (they never depend on [v]), no [v]
   accumulation — about half the sweep work for square matrices, which
   is most of what [Ss.hinf_norm]'s frequency grid asks for. *)
let singular_values ?max_sweeps a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m = 0 || n = 0 then [||]
  else begin
    let wt = if m >= n then Mat.transpose a else Mat.copy a in
    let (_ : sweep_outcome) = jacobi_sweeps ?max_sweeps wt in
    let s, order = sorted_norms wt in
    Array.map (fun i -> s.(i)) order
  end

let norm2 a =
  if a.Mat.rows = 0 || a.Mat.cols = 0 then 0.0
  else begin
    let s = singular_values a in
    if Vec.dim s = 0 then 0.0 else s.(0)
  end

(* Largest singular value of a complex matrix by one-sided Jacobi run
   directly in complex arithmetic on planar re/im column copies. The
   doubled real embedding [[re -im]; [im re]] this replaces costs 4x the
   elements and (2n)^2/2 column pairs per sweep; working on the n complex
   columns themselves touches a quarter of the data and needs no
   unpacking of the answer (singular values come out once, not twice).

   For a pair (p, q) with Gram entries alpha = |wp|^2, beta = |wq|^2 and
   gamma = <wp, wq> = |gamma| e^{i phi}, multiplying column q by
   u = e^{-i phi} makes the Gram off-diagonal real (= |gamma|), after
   which the classical real rotation angle applies verbatim. The columns
   are updated with the fused product [c, -s u; s, c u] — unitary, so
   singular values are preserved — and the cached norms update by the
   same closed form as the real kernel with gamma replaced by |gamma|. *)
let norm2_complex cm =
  let rows = cm.Cmat.rows and cols = cm.Cmat.cols in
  if rows = 0 || cols = 0 then 0.0
  else begin
    (* Orthogonalize the smaller column set: transposing a complex
       matrix permutes nothing spectrally (sigma(A^T) = sigma(A)). *)
    let m, n, get =
      if rows >= cols then (rows, cols, fun i j -> Cmat.get cm i j)
      else (cols, rows, fun i j -> Cmat.get cm j i)
    in
    let wre = Array.make (n * m) 0.0 and wim = Array.make (n * m) 0.0 in
    for q = 0 to n - 1 do
      let qb = q * m in
      for i = 0 to m - 1 do
        let z = get i q in
        Array.unsafe_set wre (qb + i) z.Complex.re;
        Array.unsafe_set wim (qb + i) z.Complex.im
      done
    done;
    let eps = convergence_eps in
    let norms2 = Array.make n 0.0 in
    let converged = ref false in
    let sweeps = ref 0 in
    let max_sweeps = 60 in
    while (not !converged) && !sweeps < max_sweeps do
      incr sweeps;
      converged := true;
      let tau = sweep_threshold !sweeps in
      for p = 0 to n - 1 do
        let pb = p * m in
        let acc = ref 0.0 in
        for i = 0 to m - 1 do
          let re = Array.unsafe_get wre (pb + i)
          and im = Array.unsafe_get wim (pb + i) in
          acc := !acc +. (re *. re) +. (im *. im)
        done;
        norms2.(p) <- !acc
      done;
      for p = 0 to n - 2 do
        let pb = p * m in
        for q = p + 1 to n - 1 do
          let qb = q * m in
          let alpha = Array.unsafe_get norms2 p
          and beta = Array.unsafe_get norms2 q in
          (* gamma = <wp, wq> (conjugate-linear in the first slot). *)
          let gre = ref 0.0 and gim = ref 0.0 in
          for i = 0 to m - 1 do
            let pr = Array.unsafe_get wre (pb + i)
            and pi = Array.unsafe_get wim (pb + i)
            and qr = Array.unsafe_get wre (qb + i)
            and qi = Array.unsafe_get wim (qb + i) in
            gre := !gre +. (pr *. qr) +. (pi *. qi);
            gim := !gim +. (pr *. qi) -. (pi *. qr)
          done;
          let ag = Float.sqrt ((!gre *. !gre) +. (!gim *. !gim)) in
          let root = sqrt (alpha *. beta) in
          let limit = eps *. root in
          if ag > limit && limit > 0.0 then begin
            converged := false;
            if ag > tau *. root then begin
              let ur = !gre /. ag and ui = -. !gim /. ag in
              let zeta = (beta -. alpha) /. (2.0 *. ag) in
              let t =
                let sign = if zeta >= 0.0 then 1.0 else -1.0 in
                sign /. (Float.abs zeta +. sqrt (1.0 +. (zeta *. zeta)))
              in
              let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
              let s = c *. t in
              for i = 0 to m - 1 do
                let pr = Array.unsafe_get wre (pb + i)
                and pi = Array.unsafe_get wim (pb + i)
                and qr = Array.unsafe_get wre (qb + i)
                and qi = Array.unsafe_get wim (qb + i) in
                let uqr = (ur *. qr) -. (ui *. qi)
                and uqi = (ur *. qi) +. (ui *. qr) in
                Array.unsafe_set wre (pb + i) ((c *. pr) -. (s *. uqr));
                Array.unsafe_set wim (pb + i) ((c *. pi) -. (s *. uqi));
                Array.unsafe_set wre (qb + i) ((s *. pr) +. (c *. uqr));
                Array.unsafe_set wim (qb + i) ((s *. pi) +. (c *. uqi))
              done;
              let cc = c *. c and ss = s *. s and cs2 = 2.0 *. c *. s in
              norms2.(p) <- (cc *. alpha) -. (cs2 *. ag) +. (ss *. beta);
              norms2.(q) <- (ss *. alpha) +. (cs2 *. ag) +. (cc *. beta)
            end
          end
        done
      done
    done;
    let (_ : sweep_outcome) =
      note_outcome ~rows:m ~cols:n
        { sweeps = !sweeps; converged = !converged }
    in
    (* Recompute the winning norm from scratch: the cached value carries
       the sweep's incremental rounding. *)
    let best = ref 0.0 in
    for q = 0 to n - 1 do
      let qb = q * m in
      let acc = ref 0.0 in
      for i = 0 to m - 1 do
        let re = Array.unsafe_get wre (qb + i)
        and im = Array.unsafe_get wim (qb + i) in
        acc := !acc +. (re *. re) +. (im *. im)
      done;
      if !acc > !best then best := !acc
    done;
    Float.sqrt !best
  end

let default_rank_tol a max_sv =
  let m = Float.of_int (max a.Mat.rows a.Mat.cols) in
  epsilon_float *. m *. max_sv

let rank ?tol a =
  let s = singular_values a in
  if Vec.dim s = 0 then 0
  else begin
    let cutoff =
      match tol with Some t -> t | None -> default_rank_tol a s.(0)
    in
    Array.fold_left (fun acc x -> if x > cutoff then acc + 1 else acc) 0 s
  end

let pinv ?tol a =
  let u, s, v = decompose a in
  let cutoff =
    match tol with
    | Some t -> t
    | None -> if Vec.dim s = 0 then 0.0 else default_rank_tol a s.(0)
  in
  let sinv = Array.map (fun x -> if x > cutoff then 1.0 /. x else 0.0) s in
  Mat.mul3 v (Mat.diag sinv) (Mat.transpose u)

let cond a =
  let s = singular_values a in
  let k = Vec.dim s in
  if k = 0 then 1.0
  else if s.(k - 1) <= 0.0 then infinity
  else s.(0) /. s.(k - 1)
