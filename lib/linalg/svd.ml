(* One-sided Jacobi SVD: orthogonalize the columns of a working copy of
   [a] with plane rotations accumulated into [v]; at convergence the column
   norms are the singular values. *)

let calls_metric = Obs.Metrics.counter "svd.calls"
let sweeps_metric = Obs.Metrics.counter "svd.sweeps"

let jacobi_onesided a =
  let m = a.Mat.rows and n = a.Mat.cols in
  let w = Mat.copy a in
  let v = Mat.identity n in
  let eps = 1e-14 in
  let converged = ref false in
  let sweeps = ref 0 in
  while (not !converged) && !sweeps < 60 do
    incr sweeps;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        (* Column inner products. *)
        let alpha = ref 0.0 and beta = ref 0.0 and gamma = ref 0.0 in
        for i = 0 to m - 1 do
          let wip = Mat.get w i p and wiq = Mat.get w i q in
          alpha := !alpha +. (wip *. wip);
          beta := !beta +. (wiq *. wiq);
          gamma := !gamma +. (wip *. wiq)
        done;
        let limit = eps *. sqrt (!alpha *. !beta) in
        if Float.abs !gamma > limit && limit > 0.0 then begin
          converged := false;
          let zeta = (!beta -. !alpha) /. (2.0 *. !gamma) in
          let t =
            let sign = if zeta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs zeta +. sqrt (1.0 +. (zeta *. zeta)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          for i = 0 to m - 1 do
            let wip = Mat.get w i p and wiq = Mat.get w i q in
            Mat.set w i p ((c *. wip) -. (s *. wiq));
            Mat.set w i q ((s *. wip) +. (c *. wiq))
          done;
          for i = 0 to n - 1 do
            let vip = Mat.get v i p and viq = Mat.get v i q in
            Mat.set v i p ((c *. vip) -. (s *. viq));
            Mat.set v i q ((s *. vip) +. (c *. viq))
          done
        end
      done
    done
  done;
  if Obs.Collector.enabled () then begin
    Obs.Metrics.incr calls_metric;
    Obs.Metrics.incr ~by:!sweeps sweeps_metric
  end;
  (w, v)

let rec decompose a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m >= n then begin
    let w, v = jacobi_onesided a in
    let k = n in
    let s = Array.init k (fun j -> Vec.norm2 (Mat.col w j)) in
    let order = Array.init k (fun i -> i) in
    Array.sort (fun i j -> Float.compare s.(j) s.(i)) order;
    let sorted_s = Array.map (fun i -> s.(i)) order in
    let u = Mat.create m k in
    let vs = Mat.create n k in
    Array.iteri
      (fun out_j in_j ->
        let sigma = s.(in_j) in
        let col = Mat.col w in_j in
        let ucol =
          if sigma > 1e-300 then Vec.scale (1.0 /. sigma) col
          else Vec.basis m (min out_j (m - 1))
        in
        Mat.set_col u out_j ucol;
        Mat.set_col vs out_j (Mat.col v in_j))
      order;
    (u, sorted_s, vs)
  end
  else begin
    (* SVD of the transpose, swapping the roles of u and v. *)
    let u, s, v = decompose (Mat.transpose a) in
    (v, s, u)
  end

let singular_values a =
  let _, s, _ = decompose a in
  s

let norm2 a =
  if a.Mat.rows = 0 || a.Mat.cols = 0 then 0.0
  else begin
    let s = singular_values a in
    if Vec.dim s = 0 then 0.0 else s.(0)
  end

let norm2_complex c =
  (* [[re -im]; [im re]] is a real matrix with the same singular values,
     each doubled in multiplicity; its largest equals the complex norm. *)
  let re = Cmat.real_part c and im = Cmat.imag_part c in
  let big = Mat.blocks [ [ re; Mat.neg im ]; [ im; re ] ] in
  norm2 big

let default_rank_tol a max_sv =
  let m = Float.of_int (max a.Mat.rows a.Mat.cols) in
  epsilon_float *. m *. max_sv

let rank ?tol a =
  let s = singular_values a in
  if Vec.dim s = 0 then 0
  else begin
    let cutoff =
      match tol with Some t -> t | None -> default_rank_tol a s.(0)
    in
    Array.fold_left (fun acc x -> if x > cutoff then acc + 1 else acc) 0 s
  end

let pinv ?tol a =
  let u, s, v = decompose a in
  let cutoff =
    match tol with
    | Some t -> t
    | None -> if Vec.dim s = 0 then 0.0 else default_rank_tol a s.(0)
  in
  let sinv = Array.map (fun x -> if x > cutoff then 1.0 /. x else 0.0) s in
  Mat.mul3 v (Mat.diag sinv) (Mat.transpose u)

let cond a =
  let s = singular_values a in
  let k = Vec.dim s in
  if k = 0 then 1.0
  else if s.(k - 1) <= 0.0 then infinity
  else s.(0) /. s.(k - 1)
