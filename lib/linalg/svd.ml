(* One-sided Jacobi SVD: orthogonalize the columns of a working copy of
   [a] with plane rotations accumulated into [v]; at convergence the column
   norms are the singular values.

   The sweep kernel operates on the TRANSPOSE of the working matrix, so
   each column of the working matrix is a contiguous row and the inner
   loops are stride-1. The arithmetic — which entries are combined, in
   which order — is exactly the column-major original's, so results are
   bit-identical; only the memory walk changed. *)

let calls_metric = Obs.Metrics.counter "svd.calls"
let sweeps_metric = Obs.Metrics.counter "svd.sweeps"
let unconverged_metric = Obs.Metrics.counter "svd.unconverged"

(* [wt] is n x m: row j is column j of the m x n working matrix. [v]
   (n x n), when given, accumulates the right rotations; the rotations
   applied to [wt] never read [v], so running with [v = None] yields the
   same [wt] — and therefore the same singular values — for callers that
   only need them. Returns the sweep count, negated if the sweep cap
   (default 60) was hit before convergence. *)
let jacobi_sweeps ?(max_sweeps = 60) ?v wt =
  let n = wt.Mat.rows and m = wt.Mat.cols in
  let wd = wt.Mat.data in
  let eps = 1e-14 in
  let converged = ref false in
  let sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    for p = 0 to n - 2 do
      let pb = p * m in
      for q = p + 1 to n - 1 do
        let qb = q * m in
        (* Inner products of working-matrix columns p and q. *)
        let alpha = ref 0.0 and beta = ref 0.0 and gamma = ref 0.0 in
        for i = 0 to m - 1 do
          let wip = Array.unsafe_get wd (pb + i)
          and wiq = Array.unsafe_get wd (qb + i) in
          alpha := !alpha +. (wip *. wip);
          beta := !beta +. (wiq *. wiq);
          gamma := !gamma +. (wip *. wiq)
        done;
        let limit = eps *. sqrt (!alpha *. !beta) in
        if Float.abs !gamma > limit && limit > 0.0 then begin
          converged := false;
          let zeta = (!beta -. !alpha) /. (2.0 *. !gamma) in
          let t =
            let sign = if zeta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs zeta +. sqrt (1.0 +. (zeta *. zeta)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          for i = 0 to m - 1 do
            let wip = Array.unsafe_get wd (pb + i)
            and wiq = Array.unsafe_get wd (qb + i) in
            Array.unsafe_set wd (pb + i) ((c *. wip) -. (s *. wiq));
            Array.unsafe_set wd (qb + i) ((s *. wip) +. (c *. wiq))
          done;
          match v with
          | None -> ()
          | Some v ->
            let vd = v.Mat.data in
            for i = 0 to n - 1 do
              let r = i * n in
              let vip = Array.unsafe_get vd (r + p)
              and viq = Array.unsafe_get vd (r + q) in
              Array.unsafe_set vd (r + p) ((c *. vip) -. (s *. viq));
              Array.unsafe_set vd (r + q) ((s *. vip) +. (c *. viq))
            done
        end
      done
    done
  done;
  if Obs.Collector.enabled () then begin
    Obs.Metrics.incr calls_metric;
    Obs.Metrics.incr ~by:!sweeps sweeps_metric;
    if not !converged then begin
      Obs.Metrics.incr unconverged_metric;
      Obs.Collector.debug ~name:"svd.unconverged"
        [
          ("rows", Obs.Json.Int m);
          ("cols", Obs.Json.Int n);
          ("sweeps", Obs.Json.Int !sweeps);
        ]
    end
  end;
  if !converged then !sweeps else - !sweeps

(* Singular values of the orthogonalized working matrix: norms of its
   columns = norms of [wt]'s rows, descending, with the sort permutation
   returned so [decompose] can reorder u/v columns identically. *)
let sorted_norms wt =
  let n = wt.Mat.rows in
  let s = Array.init n (fun j -> Vec.norm2 (Mat.row wt j)) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare s.(j) s.(i)) order;
  (s, order)

let rec decompose ?max_sweeps a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m >= n then begin
    let wt = Mat.transpose a in
    let v = Mat.identity n in
    ignore (jacobi_sweeps ?max_sweeps ~v wt);
    let s, order = sorted_norms wt in
    let sorted_s = Array.map (fun i -> s.(i)) order in
    let u = Mat.create m n in
    let vs = Mat.create n n in
    Array.iteri
      (fun out_j in_j ->
        let sigma = s.(in_j) in
        let col = Mat.row wt in_j in
        let ucol =
          if sigma > 1e-300 then Vec.scale (1.0 /. sigma) col
          else Vec.basis m (min out_j (m - 1))
        in
        Mat.set_col u out_j ucol;
        Mat.set_col vs out_j (Mat.col v in_j))
      order;
    (u, sorted_s, vs)
  end
  else begin
    (* SVD of the transpose, swapping the roles of u and v. *)
    let u, s, v = decompose ?max_sweeps (Mat.transpose a) in
    (v, s, u)
  end

(* Values-only path: same rotations (they never depend on [v]), no [v]
   accumulation — about half the sweep work for square matrices, which
   is most of what [Ss.hinf_norm]'s frequency grid asks for. *)
let singular_values ?max_sweeps a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m = 0 || n = 0 then [||]
  else begin
    let wt = if m >= n then Mat.transpose a else Mat.copy a in
    ignore (jacobi_sweeps ?max_sweeps wt);
    let s, order = sorted_norms wt in
    Array.map (fun i -> s.(i)) order
  end

let norm2 a =
  if a.Mat.rows = 0 || a.Mat.cols = 0 then 0.0
  else begin
    let s = singular_values a in
    if Vec.dim s = 0 then 0.0 else s.(0)
  end

let norm2_complex c =
  (* [[re -im]; [im re]] is a real matrix with the same singular values,
     each doubled in multiplicity; its largest equals the complex norm. *)
  let re = Cmat.real_part c and im = Cmat.imag_part c in
  let big = Mat.blocks [ [ re; Mat.neg im ]; [ im; re ] ] in
  norm2 big

let default_rank_tol a max_sv =
  let m = Float.of_int (max a.Mat.rows a.Mat.cols) in
  epsilon_float *. m *. max_sv

let rank ?tol a =
  let s = singular_values a in
  if Vec.dim s = 0 then 0
  else begin
    let cutoff =
      match tol with Some t -> t | None -> default_rank_tol a s.(0)
    in
    Array.fold_left (fun acc x -> if x > cutoff then acc + 1 else acc) 0 s
  end

let pinv ?tol a =
  let u, s, v = decompose a in
  let cutoff =
    match tol with
    | Some t -> t
    | None -> if Vec.dim s = 0 then 0.0 else default_rank_tol a s.(0)
  in
  let sinv = Array.map (fun x -> if x > cutoff then 1.0 /. x else 0.0) s in
  Mat.mul3 v (Mat.diag sinv) (Mat.transpose u)

let cond a =
  let s = singular_values a in
  let k = Vec.dim s in
  if k = 0 then 1.0
  else if s.(k - 1) <= 0.0 then infinity
  else s.(0) /. s.(k - 1)
