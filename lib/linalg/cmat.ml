open Complex

type t = { rows : int; cols : int; data : Complex.t array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) zero }

let init rows cols f =
  let a = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      a.data.((i * cols) + j) <- f i j
    done
  done;
  a

let identity n = init n n (fun i j -> if i = j then one else zero)

let of_real m =
  init m.Mat.rows m.Mat.cols (fun i j -> { re = Mat.get m i j; im = 0.0 })

let real_part a = Mat.init a.rows a.cols (fun i j -> (a.data.((i * a.cols) + j)).re)

let imag_part a = Mat.init a.rows a.cols (fun i j -> (a.data.((i * a.cols) + j)).im)

let get a i j = a.data.((i * a.cols) + j)

let set a i j x = a.data.((i * a.cols) + j) <- x

let dims a = (a.rows, a.cols)

let copy a = { a with data = Array.copy a.data }

let sub_matrix a i j m n = init m n (fun r c -> get a (i + r) (j + c))

let set_block a i j b =
  for r = 0 to b.rows - 1 do
    for c = 0 to b.cols - 1 do
      set a (i + r) (j + c) (get b r c)
    done
  done

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_same "Cmat.add" a b;
  { a with data = Array.mapi (fun k x -> Complex.add x b.data.(k)) a.data }

let sub a b =
  check_same "Cmat.sub" a b;
  { a with data = Array.mapi (fun k x -> Complex.sub x b.data.(k)) a.data }

let scale s a = { a with data = Array.map (Complex.mul s) a.data }

let scale_real s a = scale { re = s; im = 0.0 } a

let mul a b =
  if a.cols <> b.rows then invalid_arg "Cmat.mul: dimension mismatch";
  let r = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik.re <> 0.0 || aik.im <> 0.0 then begin
        let boff = k * b.cols and roff = i * b.cols in
        for j = 0 to b.cols - 1 do
          r.data.(roff + j)
          <- Complex.add r.data.(roff + j) (Complex.mul aik b.data.(boff + j))
        done
      end
    done
  done;
  r

let mul_vec a v =
  if a.cols <> Array.length v then
    invalid_arg "Cmat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref zero in
      let off = i * a.cols in
      for j = 0 to a.cols - 1 do
        acc := Complex.add !acc (Complex.mul a.data.(off + j) v.(j))
      done;
      !acc)

let transpose a = init a.cols a.rows (fun i j -> get a j i)

let conj_transpose a = init a.cols a.rows (fun i j -> Complex.conj (get a j i))

let diag d =
  let n = Array.length d in
  init n n (fun i j -> if i = j then d.(i) else zero)

let diag_real d = diag (Array.map (fun x -> { re = x; im = 0.0 }) d)

let norm_fro a =
  Float.sqrt (Array.fold_left (fun acc x -> acc +. Complex.norm2 x) 0.0 a.data)

let max_abs a = Array.fold_left (fun acc x -> Float.max acc (Complex.norm x)) 0.0 a.data

(* Gaussian elimination with partial pivoting in complex arithmetic; the
   systems involved (frequency responses, mu scalings) are small.
   [solve_destructive] consumes its arguments ([m] is triangularized in
   place, [rhs] is reduced alongside); [solve] is the copying wrapper. *)
let solve_destructive m rhs =
  let n = m.rows in
  let tol = 1e-14 *. Float.max 1.0 (max_abs m) in
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm (get m i k) > Complex.norm (get m !pivot_row k) then
        pivot_row := i
    done;
    if Complex.norm (get m !pivot_row k) <= tol then raise Lu.Singular;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let t = get m k j in
        set m k j (get m !pivot_row j);
        set m !pivot_row j t
      done;
      for j = 0 to rhs.cols - 1 do
        let t = get rhs k j in
        set rhs k j (get rhs !pivot_row j);
        set rhs !pivot_row j t
      done
    end;
    let pivot = get m k k in
    for i = k + 1 to n - 1 do
      let f = Complex.div (get m i k) pivot in
      if f.re <> 0.0 || f.im <> 0.0 then begin
        for j = k to n - 1 do
          set m i j (Complex.sub (get m i j) (Complex.mul f (get m k j)))
        done;
        for j = 0 to rhs.cols - 1 do
          set rhs i j (Complex.sub (get rhs i j) (Complex.mul f (get rhs k j)))
        done
      end
    done
  done;
  let x = create n rhs.cols in
  for j = 0 to rhs.cols - 1 do
    for i = n - 1 downto 0 do
      let acc = ref (get rhs i j) in
      for l = i + 1 to n - 1 do
        acc := Complex.sub !acc (Complex.mul (get m i l) (get x l j))
      done;
      set x i j (Complex.div !acc (get m i i))
    done
  done;
  x

let solve a b =
  if not (a.rows = a.cols) then invalid_arg "Cmat.solve: non-square";
  if a.rows <> b.rows then invalid_arg "Cmat.solve: dimension mismatch";
  solve_destructive (copy a) (copy b)

(* (zI - a)^{-1} b: the resolvent applied to [b]. Builds the shifted
   matrix in one pass and hands it straight to the destructive solve —
   the frequency-response grids in [Ss.hinf_norm] call this hundreds of
   times per synthesis, where the scale/sub/copy chain it replaces was
   three full-matrix allocations per grid point. Entries match the
   [sub (scale z identity) a] formulation bit-for-bit. *)
let resolvent z a b =
  if not (a.rows = a.cols) then invalid_arg "Cmat.resolvent: non-square";
  if a.rows <> b.rows then invalid_arg "Cmat.resolvent: dimension mismatch";
  let n = a.rows in
  let m =
    init n n (fun i j ->
        let x = a.data.((i * n) + j) in
        if i = j then Complex.sub z x else Complex.sub zero x)
  in
  solve_destructive m (copy b)

let inv a = solve a (identity a.rows)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  Array.iteri
    (fun k x -> if Complex.norm (Complex.sub x b.data.(k)) > tol then ok := false)
    a.data;
  !ok

let pp fmt a =
  Format.fprintf fmt "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      let z = get a i j in
      Format.fprintf fmt "%.4g%+.4gi" z.re z.im
    done;
    Format.fprintf fmt "]";
    if i < a.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
