(* Householder reduction to upper Hessenberg form. Only the Hessenberg
   matrix is needed (eigenvalues, not eigenvectors), so the orthogonal
   transform is not accumulated. *)
let hessenberg a =
  if not (Mat.is_square a) then invalid_arg "Eig.hessenberg: non-square";
  let n = a.Mat.rows in
  let h = Mat.copy a in
  let hd = h.Mat.data in
  for k = 0 to n - 3 do
    let x =
      Array.init (n - k - 1) (fun i ->
          Array.unsafe_get hd (((k + 1 + i) * n) + k))
    in
    let normx = Vec.norm2 x in
    if normx > 1e-300 then begin
      let alpha = if x.(0) >= 0.0 then -.normx else normx in
      let v = Array.copy x in
      v.(0) <- v.(0) -. alpha;
      let vnorm = Vec.norm2 v in
      if vnorm > 1e-300 then begin
        let v = Vec.scale (1.0 /. vnorm) v in
        (* Left: rows k+1..n-1, all columns. *)
        for j = 0 to n - 1 do
          let dot = ref 0.0 in
          for i = 0 to n - k - 2 do
            dot :=
              !dot
              +. (Array.unsafe_get v i
                  *. Array.unsafe_get hd (((k + 1 + i) * n) + j))
          done;
          let d2 = 2.0 *. !dot in
          for i = 0 to n - k - 2 do
            let idx = ((k + 1 + i) * n) + j in
            Array.unsafe_set hd idx
              (Array.unsafe_get hd idx -. (d2 *. Array.unsafe_get v i))
          done
        done;
        (* Right: columns k+1..n-1, all rows (similarity transform). *)
        for i = 0 to n - 1 do
          let row = i * n in
          let dot = ref 0.0 in
          for j = 0 to n - k - 2 do
            dot :=
              !dot
              +. (Array.unsafe_get hd (row + k + 1 + j) *. Array.unsafe_get v j)
          done;
          let d2 = 2.0 *. !dot in
          for j = 0 to n - k - 2 do
            let idx = row + k + 1 + j in
            Array.unsafe_set hd idx
              (Array.unsafe_get hd idx -. (d2 *. Array.unsafe_get v j))
          done
        done
      end
    end;
    (* Zero out the entries below the subdiagonal explicitly. *)
    for i = k + 2 to n - 1 do
      Mat.set h i k 0.0
    done
  done;
  h

open Complex

let cnorm = Complex.norm

(* Eigenvalues of a complex 2x2 block [[a, b]; [c, d]]. *)
let eig2x2 a b c d =
  let tr = Complex.add a d in
  let half_tr = Complex.div tr { re = 2.0; im = 0.0 } in
  let amd = Complex.sub a d in
  let disc =
    Complex.add (Complex.mul amd amd)
      (Complex.mul { re = 4.0; im = 0.0 } (Complex.mul b c))
  in
  let s = Complex.sqrt disc in
  let half_s = Complex.div s { re = 2.0; im = 0.0 } in
  (Complex.add half_tr half_s, Complex.sub half_tr half_s)

(* Complex Givens rotation G = [[c, s]; [-conj s, c]] with real c >= 0 such
   that G [x; y] = [r; 0]. *)
let givens x y =
  if cnorm y = 0.0 then (1.0, zero)
  else if cnorm x = 0.0 then (0.0, one)
  else begin
    let t = Float.sqrt (Complex.norm2 x +. Complex.norm2 y) in
    let c = cnorm x /. t in
    let phase = Complex.div x { re = cnorm x; im = 0.0 } in
    let s = Complex.div (Complex.mul phase (Complex.conj y)) { re = t; im = 0.0 } in
    (c, s)
  end

let qr_calls_metric = Obs.Metrics.counter "eig.calls"
let qr_iters_metric = Obs.Metrics.counter "eig.qr_iterations"

(* Shifted QR iteration on a complex upper Hessenberg matrix — the
   pre-Francis reference path. The matrix is modified in place; returns
   the array of eigenvalues. Kept as the oracle the property tests
   compare the real Francis path against. *)
let qr_hessenberg_eigenvalues h =
  let n = h.Cmat.rows in
  let eigs = Array.make n zero in
  let eps = 1e-13 in
  let subdiag_negligible i =
    (* h.(i).(i-1) negligible versus its diagonal neighbours *)
    let s = cnorm (Cmat.get h (i - 1) (i - 1)) +. cnorm (Cmat.get h i i) in
    let s = if s = 0.0 then Cmat.max_abs h else s in
    cnorm (Cmat.get h i (i - 1)) <= eps *. s
  in
  let hi = ref (n - 1) in
  let iter_count = ref 0 in
  let max_iter = 60 * n in
  while !hi >= 0 do
    if !hi = 0 then begin
      eigs.(0) <- Cmat.get h 0 0;
      hi := -1
    end
    else begin
      (* Find the start [l] of the active unreduced block ending at [hi]. *)
      let l = ref !hi in
      while !l > 0 && not (subdiag_negligible !l) do
        decr l
      done;
      if !l = !hi then begin
        eigs.(!hi) <- Cmat.get h !hi !hi;
        decr hi
      end
      else if !l = !hi - 1 then begin
        let e1, e2 =
          eig2x2
            (Cmat.get h !l !l) (Cmat.get h !l !hi)
            (Cmat.get h !hi !l) (Cmat.get h !hi !hi)
        in
        eigs.(!l) <- e1;
        eigs.(!hi) <- e2;
        hi := !hi - 2
      end
      else begin
        incr iter_count;
        if !iter_count > max_iter then
          failwith "Eig.eigenvalues: QR iteration did not converge";
        (* Wilkinson shift from the trailing 2x2, with an occasional
           exceptional shift to break symmetry-induced stalls. *)
        let shift =
          if !iter_count mod 17 = 0 then
            {
              re =
                Float.abs (cnorm (Cmat.get h !hi (!hi - 1)))
                +. Float.abs (cnorm (Cmat.get h (!hi - 1) (!hi - 2)));
              im = 0.0;
            }
          else begin
            let e1, e2 =
              eig2x2
                (Cmat.get h (!hi - 1) (!hi - 1)) (Cmat.get h (!hi - 1) !hi)
                (Cmat.get h !hi (!hi - 1)) (Cmat.get h !hi !hi)
            in
            let hnn = Cmat.get h !hi !hi in
            if cnorm (Complex.sub e1 hnn) <= cnorm (Complex.sub e2 hnn)
            then e1 else e2
          end
        in
        let l = !l and hi_i = !hi in
        for i = l to hi_i do
          Cmat.set h i i (Complex.sub (Cmat.get h i i) shift)
        done;
        (* Left Givens sweep: triangularize the active block. The rows
           involved are addressed directly in the backing array (checked
           implicitly by the loop bounds); the complex arithmetic is
           unchanged. *)
        let hd = h.Cmat.data in
        let rot = Array.make (hi_i - l) (1.0, zero) in
        for k = l to hi_i - 1 do
          let rk = k * n and rk1 = (k + 1) * n in
          let c, s =
            givens (Array.unsafe_get hd (rk + k)) (Array.unsafe_get hd (rk1 + k))
          in
          rot.(k - l) <- (c, s);
          let cc = { re = c; im = 0.0 } in
          for j = k to hi_i do
            let x = Array.unsafe_get hd (rk + j)
            and y = Array.unsafe_get hd (rk1 + j) in
            Array.unsafe_set hd (rk + j)
              (Complex.add (Complex.mul cc x) (Complex.mul s y));
            Array.unsafe_set hd (rk1 + j)
              (Complex.sub (Complex.mul cc y)
                 (Complex.mul (Complex.conj s) x))
          done
        done;
        (* Right sweep: H <- R * Q^H, restoring Hessenberg form. *)
        for k = l to hi_i - 1 do
          let c, s = rot.(k - l) in
          let cc = { re = c; im = 0.0 } in
          for i = l to min (k + 1) hi_i do
            let row = i * n in
            let x = Array.unsafe_get hd (row + k)
            and y = Array.unsafe_get hd (row + k + 1) in
            Array.unsafe_set hd (row + k)
              (Complex.add (Complex.mul cc x) (Complex.mul (Complex.conj s) y));
            Array.unsafe_set hd (row + k + 1)
              (Complex.sub (Complex.mul cc y) (Complex.mul s x))
          done
        done;
        for i = l to hi_i do
          Cmat.set h i i (Complex.add (Cmat.get h i i) shift)
        done
      end
    end
  done;
  eigs

(* ------------------------------------------------------------------ *)
(* Real Francis implicit double-shift QR                               *)
(* ------------------------------------------------------------------ *)

(* Eigenvalues of a real upper Hessenberg matrix by the Francis implicit
   double-shift iteration (EISPACK hqr lineage). Works on the real matrix
   throughout — no complex arithmetic until the very end, when complex
   conjugate pairs are extracted from irreducible trailing 2x2 blocks.

   Per sweep the Wilkinson double shift (both eigenvalues of the trailing
   2x2) is applied implicitly: a 3x1 "bulge" is created at the top of the
   active block and chased down the subdiagonal with Householder
   3-reflectors, costing O(n^2) real flops per sweep versus the complex
   path's O(n^2) complex multiplies (a ~6x flop and boxing gap).

   Deflation is aggressive on two fronts: the active block's lower edge
   [nn] retreats whenever trailing 1x1/2x2 blocks split off, and the scan
   for the block start [l] walks the whole subdiagonal from the bottom,
   committing hard zeros as it finds negligible entries — so interior
   zero subdiagonals split the problem into independent sub-blocks for
   free. Stalls are broken with the classic exceptional shift at
   iterations 10 and 20 of a block; 30 iterations without deflation is a
   convergence failure. [h] is destroyed. *)
let francis_hessenberg_eigenvalues h =
  let n = h.Mat.rows in
  let hd = h.Mat.data in
  let get i j = Array.unsafe_get hd ((i * n) + j) in
  let set i j x = Array.unsafe_set hd ((i * n) + j) x in
  let wr = Array.make n 0.0 and wi = Array.make n 0.0 in
  let eps = 1e-13 in
  (* Fallback scale for negligibility tests when both diagonal
     neighbours of a subdiagonal entry vanish. *)
  let anorm = ref 0.0 in
  for i = 0 to n - 1 do
    for j = max 0 (i - 1) to n - 1 do
      anorm := !anorm +. Float.abs (get i j)
    done
  done;
  let anorm = if !anorm = 0.0 then 1.0 else !anorm in
  let iter_count = ref 0 in
  (* [t] accumulates exceptional shifts subtracted from the diagonal so
     the eigenvalues can be restored on extraction. *)
  let t = ref 0.0 in
  let nn = ref (n - 1) in
  while !nn >= 0 do
    let its = ref 0 in
    let deflated = ref false in
    while not !deflated do
      (* Scan from the bottom for a negligible subdiagonal; commit the
         zero so the split is permanent. [l] is the active block start. *)
      let l = ref !nn in
      let scanning = ref true in
      while !scanning && !l > 0 do
        let s = Float.abs (get (!l - 1) (!l - 1)) +. Float.abs (get !l !l) in
        let s = if s = 0.0 then anorm else s in
        if Float.abs (get !l (!l - 1)) <= eps *. s then begin
          set !l (!l - 1) 0.0;
          scanning := false
        end
        else decr l
      done;
      let l = !l in
      let x = get !nn !nn in
      if l = !nn then begin
        (* 1x1 block: one real eigenvalue. *)
        wr.(!nn) <- x +. !t;
        wi.(!nn) <- 0.0;
        nn := !nn - 1;
        deflated := true
      end
      else begin
        let y = get (!nn - 1) (!nn - 1) in
        let w = get !nn (!nn - 1) *. get (!nn - 1) !nn in
        if l = !nn - 1 then begin
          (* 2x2 block: a real pair or a complex conjugate pair. *)
          let p = 0.5 *. (y -. x) in
          let q = (p *. p) +. w in
          let z = Float.sqrt (Float.abs q) in
          let x = x +. !t in
          if q >= 0.0 then begin
            (* Real pair, computed stably: larger root by magnitude
               first, the other via the product w. *)
            let z = p +. (if p >= 0.0 then z else -.z) in
            wr.(!nn - 1) <- x +. z;
            wr.(!nn) <- (if z <> 0.0 then x -. (w /. z) else x +. z);
            wi.(!nn - 1) <- 0.0;
            wi.(!nn) <- 0.0
          end
          else begin
            wr.(!nn - 1) <- x +. p;
            wr.(!nn) <- x +. p;
            wi.(!nn - 1) <- z;
            wi.(!nn) <- -.z
          end;
          nn := !nn - 2;
          deflated := true
        end
        else begin
          (* Active block of order >= 3: one Francis double-shift sweep. *)
          if !its = 30 then
            failwith "Eig.eigenvalues: QR iteration did not converge";
          incr iter_count;
          let x = ref x and y = ref y and w = ref w in
          if !its = 10 || !its = 20 then begin
            (* Exceptional shift: translate the spectrum and use an
               ad-hoc shift built from the last two subdiagonals. *)
            t := !t +. !x;
            for i = 0 to !nn do
              set i i (get i i -. !x)
            done;
            let s =
              Float.abs (get !nn (!nn - 1))
              +. Float.abs (get (!nn - 1) (!nn - 2))
            in
            x := 0.75 *. s;
            y := !x;
            w := -0.4375 *. s *. s
          end;
          incr its;
          (* Look for two consecutive small subdiagonals from the bottom
             up: starting the chase at [m] > [l] skips the quiet top of
             the block. (p, q, r) is the first column of the shifted
             polynomial (H - s1)(H - s2) e1, scaled. *)
          let p = ref 0.0 and q = ref 0.0 and r = ref 0.0 in
          let m = ref (!nn - 2) in
          let searching = ref true in
          while !searching do
            let z = get !m !m in
            let rr = !x -. z and ss = !y -. z in
            p := (((rr *. ss) -. !w) /. get (!m + 1) !m) +. get !m (!m + 1);
            q := get (!m + 1) (!m + 1) -. z -. rr -. ss;
            r := get (!m + 2) (!m + 1);
            let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
            p := !p /. s;
            q := !q /. s;
            r := !r /. s;
            if !m = l then searching := false
            else begin
              let u =
                Float.abs (get !m (!m - 1))
                *. (Float.abs !q +. Float.abs !r)
              in
              let v =
                Float.abs !p
                *. (Float.abs (get (!m - 1) (!m - 1))
                   +. Float.abs z
                   +. Float.abs (get (!m + 1) (!m + 1)))
              in
              if u <= eps *. v then searching := false else decr m
            end
          done;
          let m = !m in
          for i = m + 2 to !nn do
            set i (i - 2) 0.0
          done;
          for i = m + 3 to !nn do
            set i (i - 3) 0.0
          done;
          (* Chase the 3x1 bulge from row m down to the bottom of the
             block with Householder reflectors on rows/cols k..k+2. *)
          for k = m to !nn - 1 do
            if k <> m then begin
              p := get k (k - 1);
              q := get (k + 1) (k - 1);
              r := (if k <> !nn - 1 then get (k + 2) (k - 1) else 0.0)
            end;
            let scale = Float.abs !p +. Float.abs !q +. Float.abs !r in
            if k <> m && scale <> 0.0 then begin
              p := !p /. scale;
              q := !q /. scale;
              r := !r /. scale
            end;
            let s =
              let mag =
                Float.sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))
              in
              if !p >= 0.0 then mag else -.mag
            in
            if s <> 0.0 then begin
              if k = m then begin
                if l <> m then set k (k - 1) (-.(get k (k - 1)))
              end
              else set k (k - 1) (-.s *. scale);
              p := !p +. s;
              let hx = !p /. s and hy = !q /. s and hz = !r /. s in
              let hq = !q /. !p and hr = !r /. !p in
              (* Row operation on rows k, k+1, k+2. *)
              for j = k to !nn do
                let pj =
                  get k j +. (hq *. get (k + 1) j)
                  +. (if k <> !nn - 1 then hr *. get (k + 2) j else 0.0)
                in
                if k <> !nn - 1 then
                  set (k + 2) j (get (k + 2) j -. (pj *. hz));
                set (k + 1) j (get (k + 1) j -. (pj *. hy));
                set k j (get k j -. (pj *. hx))
              done;
              (* Column operation on columns k, k+1, k+2. *)
              let mmin = if !nn < k + 3 then !nn else k + 3 in
              for i = l to mmin do
                let pi =
                  (hx *. get i k) +. (hy *. get i (k + 1))
                  +. (if k <> !nn - 1 then hz *. get i (k + 2) else 0.0)
                in
                if k <> !nn - 1 then
                  set i (k + 2) (get i (k + 2) -. (pi *. hr));
                set i (k + 1) (get i (k + 1) -. (pi *. hq));
                set i k (get i k -. pi)
              done
            end
          done
        end
      end
    done
  done;
  if Obs.Collector.enabled () then
    Obs.Metrics.incr ~by:!iter_count qr_iters_metric;
  Array.init n (fun i -> { re = wr.(i); im = wi.(i) })

let eigenvalues a =
  if not (Mat.is_square a) then invalid_arg "Eig.eigenvalues: non-square";
  let n = a.Mat.rows in
  if Obs.Collector.enabled () then Obs.Metrics.incr qr_calls_metric;
  if n = 0 then [||]
  else if n = 1 then [| { re = Mat.get a 0 0; im = 0.0 } |]
  else francis_hessenberg_eigenvalues (hessenberg a)

(* Reference path retained for cross-validation: Hessenberg + complex
   shifted QR, exactly the pre-Francis implementation. *)
let eigenvalues_complex_ref a =
  if not (Mat.is_square a) then
    invalid_arg "Eig.eigenvalues_complex_ref: non-square";
  let n = a.Mat.rows in
  if n = 0 then [||]
  else if n = 1 then [| { re = Mat.get a 0 0; im = 0.0 } |]
  else qr_hessenberg_eigenvalues (Cmat.of_real (hessenberg a))

let spectral_radius a =
  Array.fold_left (fun acc z -> Float.max acc (cnorm z)) 0.0 (eigenvalues a)

let spectral_abscissa a =
  Array.fold_left (fun acc z -> Float.max acc z.re) neg_infinity (eigenvalues a)

let is_stable_discrete ?(margin = 1e-9) a = spectral_radius a < 1.0 -. margin

let is_stable_continuous ?(margin = 1e-9) a = spectral_abscissa a < -.margin

(* Cyclic Jacobi for symmetric matrices: rotate away the off-diagonal
   entries until convergence. Quadratically convergent and unconditionally
   reliable, which matters more here than speed. The rotation choice
   never reads [v], so the values-only driver below runs the same sweeps
   without accumulating eigenvectors (about a third less work per
   rotation) — that path serves the definiteness checks on the H-infinity
   bisection's hot loop. *)
let jacobi_symmetric ~want_vectors a =
  if not (Mat.is_square a) then invalid_arg "Eig.symmetric: non-square";
  let n = a.Mat.rows in
  let m = Mat.init n n (fun i j -> if j <= i then Mat.get a i j else Mat.get a j i) in
  let v = if want_vectors then Mat.identity n else Mat.create 0 0 in
  let off_norm () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc +. (Mat.get m i j *. Mat.get m i j)
      done
    done;
    Float.sqrt (2.0 *. !acc)
  in
  let tol = 1e-12 *. Float.max 1.0 (Mat.norm_fro m) in
  let sweeps = ref 0 in
  while off_norm () > tol && !sweeps < 100 do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get m p q in
        if Float.abs apq > 1e-300 then begin
          let app = Mat.get m p p and aqq = Mat.get m q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. Float.sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. Float.sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          let md = m.Mat.data in
          for k = 0 to n - 1 do
            let row = k * n in
            let mkp = Array.unsafe_get md (row + p)
            and mkq = Array.unsafe_get md (row + q) in
            Array.unsafe_set md (row + p) ((c *. mkp) -. (s *. mkq));
            Array.unsafe_set md (row + q) ((s *. mkp) +. (c *. mkq))
          done;
          let rp = p * n and rq = q * n in
          for k = 0 to n - 1 do
            let mpk = Array.unsafe_get md (rp + k)
            and mqk = Array.unsafe_get md (rq + k) in
            Array.unsafe_set md (rp + k) ((c *. mpk) -. (s *. mqk));
            Array.unsafe_set md (rq + k) ((s *. mpk) +. (c *. mqk))
          done;
          if want_vectors then begin
            let vd = v.Mat.data in
            for k = 0 to n - 1 do
              let row = k * n in
              let vkp = Array.unsafe_get vd (row + p)
              and vkq = Array.unsafe_get vd (row + q) in
              Array.unsafe_set vd (row + p) ((c *. vkp) -. (s *. vkq));
              Array.unsafe_set vd (row + q) ((s *. vkp) +. (c *. vkq))
            done
          end
        end
      done
    done
  done;
  (Mat.diagonal m, v)

let symmetric a =
  let values, v = jacobi_symmetric ~want_vectors:true a in
  let n = Vec.dim values in
  (* Sort ascending, permuting eigenvector columns alongside. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare values.(i) values.(j)) order;
  let sorted_values = Array.map (fun i -> values.(i)) order in
  let sorted_vectors = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  (sorted_values, sorted_vectors)

let symmetric_values a =
  let values, _ = jacobi_symmetric ~want_vectors:false a in
  Array.sort Float.compare values;
  values

let is_positive_semidefinite ?(tol = 1e-9) a =
  let values = symmetric_values (Mat.symmetrize a) in
  let floor = -.tol *. Float.max 1.0 (Mat.max_abs a) in
  Array.for_all (fun x -> x >= floor) values

let is_positive_definite ?(tol = 1e-9) a =
  let values = symmetric_values (Mat.symmetrize a) in
  let floor = tol *. Float.max 1.0 (Mat.max_abs a) in
  Array.for_all (fun x -> x > floor) values

let spectral_radius_complex c =
  let re = Cmat.real_part c and im = Cmat.imag_part c in
  let big = Mat.blocks [ [ re; Mat.neg im ]; [ im; re ] ] in
  spectral_radius big
