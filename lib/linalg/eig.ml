(* Householder reduction to upper Hessenberg form. Only the Hessenberg
   matrix is needed (eigenvalues, not eigenvectors), so the orthogonal
   transform is not accumulated. *)
let hessenberg a =
  if not (Mat.is_square a) then invalid_arg "Eig.hessenberg: non-square";
  let n = a.Mat.rows in
  let h = Mat.copy a in
  let hd = h.Mat.data in
  for k = 0 to n - 3 do
    let x =
      Array.init (n - k - 1) (fun i ->
          Array.unsafe_get hd (((k + 1 + i) * n) + k))
    in
    let normx = Vec.norm2 x in
    if normx > 1e-300 then begin
      let alpha = if x.(0) >= 0.0 then -.normx else normx in
      let v = Array.copy x in
      v.(0) <- v.(0) -. alpha;
      let vnorm = Vec.norm2 v in
      if vnorm > 1e-300 then begin
        let v = Vec.scale (1.0 /. vnorm) v in
        (* Left: rows k+1..n-1, all columns. *)
        for j = 0 to n - 1 do
          let dot = ref 0.0 in
          for i = 0 to n - k - 2 do
            dot :=
              !dot
              +. (Array.unsafe_get v i
                  *. Array.unsafe_get hd (((k + 1 + i) * n) + j))
          done;
          let d2 = 2.0 *. !dot in
          for i = 0 to n - k - 2 do
            let idx = ((k + 1 + i) * n) + j in
            Array.unsafe_set hd idx
              (Array.unsafe_get hd idx -. (d2 *. Array.unsafe_get v i))
          done
        done;
        (* Right: columns k+1..n-1, all rows (similarity transform). *)
        for i = 0 to n - 1 do
          let row = i * n in
          let dot = ref 0.0 in
          for j = 0 to n - k - 2 do
            dot :=
              !dot
              +. (Array.unsafe_get hd (row + k + 1 + j) *. Array.unsafe_get v j)
          done;
          let d2 = 2.0 *. !dot in
          for j = 0 to n - k - 2 do
            let idx = row + k + 1 + j in
            Array.unsafe_set hd idx
              (Array.unsafe_get hd idx -. (d2 *. Array.unsafe_get v j))
          done
        done
      end
    end;
    (* Zero out the entries below the subdiagonal explicitly. *)
    for i = k + 2 to n - 1 do
      Mat.set h i k 0.0
    done
  done;
  h

open Complex

let cnorm = Complex.norm

(* Eigenvalues of a complex 2x2 block [[a, b]; [c, d]]. *)
let eig2x2 a b c d =
  let tr = Complex.add a d in
  let half_tr = Complex.div tr { re = 2.0; im = 0.0 } in
  let amd = Complex.sub a d in
  let disc =
    Complex.add (Complex.mul amd amd)
      (Complex.mul { re = 4.0; im = 0.0 } (Complex.mul b c))
  in
  let s = Complex.sqrt disc in
  let half_s = Complex.div s { re = 2.0; im = 0.0 } in
  (Complex.add half_tr half_s, Complex.sub half_tr half_s)

(* Complex Givens rotation G = [[c, s]; [-conj s, c]] with real c >= 0 such
   that G [x; y] = [r; 0]. *)
let givens x y =
  if cnorm y = 0.0 then (1.0, zero)
  else if cnorm x = 0.0 then (0.0, one)
  else begin
    let t = Float.sqrt (Complex.norm2 x +. Complex.norm2 y) in
    let c = cnorm x /. t in
    let phase = Complex.div x { re = cnorm x; im = 0.0 } in
    let s = Complex.div (Complex.mul phase (Complex.conj y)) { re = t; im = 0.0 } in
    (c, s)
  end

(* Shifted QR iteration on a complex upper Hessenberg matrix. The matrix is
   modified in place; returns the array of eigenvalues. *)

let qr_calls_metric = Obs.Metrics.counter "eig.calls"
let qr_iters_metric = Obs.Metrics.counter "eig.qr_iterations"

let qr_hessenberg_eigenvalues h =
  let n = h.Cmat.rows in
  let eigs = Array.make n zero in
  let eps = 1e-13 in
  let subdiag_negligible i =
    (* h.(i).(i-1) negligible versus its diagonal neighbours *)
    let s = cnorm (Cmat.get h (i - 1) (i - 1)) +. cnorm (Cmat.get h i i) in
    let s = if s = 0.0 then Cmat.max_abs h else s in
    cnorm (Cmat.get h i (i - 1)) <= eps *. s
  in
  let hi = ref (n - 1) in
  let iter_count = ref 0 in
  let max_iter = 60 * n in
  while !hi >= 0 do
    if !hi = 0 then begin
      eigs.(0) <- Cmat.get h 0 0;
      hi := -1
    end
    else begin
      (* Find the start [l] of the active unreduced block ending at [hi]. *)
      let l = ref !hi in
      while !l > 0 && not (subdiag_negligible !l) do
        decr l
      done;
      if !l = !hi then begin
        eigs.(!hi) <- Cmat.get h !hi !hi;
        decr hi
      end
      else if !l = !hi - 1 then begin
        let e1, e2 =
          eig2x2
            (Cmat.get h !l !l) (Cmat.get h !l !hi)
            (Cmat.get h !hi !l) (Cmat.get h !hi !hi)
        in
        eigs.(!l) <- e1;
        eigs.(!hi) <- e2;
        hi := !hi - 2
      end
      else begin
        incr iter_count;
        if !iter_count > max_iter then
          failwith "Eig.eigenvalues: QR iteration did not converge";
        (* Wilkinson shift from the trailing 2x2, with an occasional
           exceptional shift to break symmetry-induced stalls. *)
        let shift =
          if !iter_count mod 17 = 0 then
            {
              re =
                Float.abs (cnorm (Cmat.get h !hi (!hi - 1)))
                +. Float.abs (cnorm (Cmat.get h (!hi - 1) (!hi - 2)));
              im = 0.0;
            }
          else begin
            let e1, e2 =
              eig2x2
                (Cmat.get h (!hi - 1) (!hi - 1)) (Cmat.get h (!hi - 1) !hi)
                (Cmat.get h !hi (!hi - 1)) (Cmat.get h !hi !hi)
            in
            let hnn = Cmat.get h !hi !hi in
            if cnorm (Complex.sub e1 hnn) <= cnorm (Complex.sub e2 hnn)
            then e1 else e2
          end
        in
        let l = !l and hi_i = !hi in
        for i = l to hi_i do
          Cmat.set h i i (Complex.sub (Cmat.get h i i) shift)
        done;
        (* Left Givens sweep: triangularize the active block. The rows
           involved are addressed directly in the backing array (checked
           implicitly by the loop bounds); the complex arithmetic is
           unchanged. *)
        let hd = h.Cmat.data in
        let rot = Array.make (hi_i - l) (1.0, zero) in
        for k = l to hi_i - 1 do
          let rk = k * n and rk1 = (k + 1) * n in
          let c, s =
            givens (Array.unsafe_get hd (rk + k)) (Array.unsafe_get hd (rk1 + k))
          in
          rot.(k - l) <- (c, s);
          let cc = { re = c; im = 0.0 } in
          for j = k to hi_i do
            let x = Array.unsafe_get hd (rk + j)
            and y = Array.unsafe_get hd (rk1 + j) in
            Array.unsafe_set hd (rk + j)
              (Complex.add (Complex.mul cc x) (Complex.mul s y));
            Array.unsafe_set hd (rk1 + j)
              (Complex.sub (Complex.mul cc y)
                 (Complex.mul (Complex.conj s) x))
          done
        done;
        (* Right sweep: H <- R * Q^H, restoring Hessenberg form. *)
        for k = l to hi_i - 1 do
          let c, s = rot.(k - l) in
          let cc = { re = c; im = 0.0 } in
          for i = l to min (k + 1) hi_i do
            let row = i * n in
            let x = Array.unsafe_get hd (row + k)
            and y = Array.unsafe_get hd (row + k + 1) in
            Array.unsafe_set hd (row + k)
              (Complex.add (Complex.mul cc x) (Complex.mul (Complex.conj s) y));
            Array.unsafe_set hd (row + k + 1)
              (Complex.sub (Complex.mul cc y) (Complex.mul s x))
          done
        done;
        for i = l to hi_i do
          Cmat.set h i i (Complex.add (Cmat.get h i i) shift)
        done
      end
    end
  done;
  if Obs.Collector.enabled () then begin
    Obs.Metrics.incr qr_calls_metric;
    Obs.Metrics.incr ~by:!iter_count qr_iters_metric
  end;
  eigs

let eigenvalues a =
  if not (Mat.is_square a) then invalid_arg "Eig.eigenvalues: non-square";
  let n = a.Mat.rows in
  if n = 0 then [||]
  else if n = 1 then [| { re = Mat.get a 0 0; im = 0.0 } |]
  else begin
    let h = Cmat.of_real (hessenberg a) in
    qr_hessenberg_eigenvalues h
  end

let spectral_radius a =
  Array.fold_left (fun acc z -> Float.max acc (cnorm z)) 0.0 (eigenvalues a)

let spectral_abscissa a =
  Array.fold_left (fun acc z -> Float.max acc z.re) neg_infinity (eigenvalues a)

let is_stable_discrete ?(margin = 1e-9) a = spectral_radius a < 1.0 -. margin

let is_stable_continuous ?(margin = 1e-9) a = spectral_abscissa a < -.margin

(* Cyclic Jacobi for symmetric matrices: rotate away the off-diagonal
   entries until convergence. Quadratically convergent and unconditionally
   reliable, which matters more here than speed. *)
let symmetric a =
  if not (Mat.is_square a) then invalid_arg "Eig.symmetric: non-square";
  let n = a.Mat.rows in
  let m = Mat.init n n (fun i j -> if j <= i then Mat.get a i j else Mat.get a j i) in
  let v = Mat.identity n in
  let off_norm () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc +. (Mat.get m i j *. Mat.get m i j)
      done
    done;
    Float.sqrt (2.0 *. !acc)
  in
  let tol = 1e-12 *. Float.max 1.0 (Mat.norm_fro m) in
  let sweeps = ref 0 in
  while off_norm () > tol && !sweeps < 100 do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get m p q in
        if Float.abs apq > 1e-300 then begin
          let app = Mat.get m p p and aqq = Mat.get m q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. Float.sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. Float.sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          let md = m.Mat.data and vd = v.Mat.data in
          for k = 0 to n - 1 do
            let row = k * n in
            let mkp = Array.unsafe_get md (row + p)
            and mkq = Array.unsafe_get md (row + q) in
            Array.unsafe_set md (row + p) ((c *. mkp) -. (s *. mkq));
            Array.unsafe_set md (row + q) ((s *. mkp) +. (c *. mkq))
          done;
          let rp = p * n and rq = q * n in
          for k = 0 to n - 1 do
            let mpk = Array.unsafe_get md (rp + k)
            and mqk = Array.unsafe_get md (rq + k) in
            Array.unsafe_set md (rp + k) ((c *. mpk) -. (s *. mqk));
            Array.unsafe_set md (rq + k) ((s *. mpk) +. (c *. mqk))
          done;
          for k = 0 to n - 1 do
            let row = k * n in
            let vkp = Array.unsafe_get vd (row + p)
            and vkq = Array.unsafe_get vd (row + q) in
            Array.unsafe_set vd (row + p) ((c *. vkp) -. (s *. vkq));
            Array.unsafe_set vd (row + q) ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let values = Mat.diagonal m in
  (* Sort ascending, permuting eigenvector columns alongside. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare values.(i) values.(j)) order;
  let sorted_values = Array.map (fun i -> values.(i)) order in
  let sorted_vectors = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  (sorted_values, sorted_vectors)

let symmetric_values a = fst (symmetric a)

let is_positive_semidefinite ?(tol = 1e-9) a =
  let values = symmetric_values (Mat.symmetrize a) in
  let floor = -.tol *. Float.max 1.0 (Mat.max_abs a) in
  Array.for_all (fun x -> x >= floor) values

let is_positive_definite ?(tol = 1e-9) a =
  let values = symmetric_values (Mat.symmetrize a) in
  let floor = tol *. Float.max 1.0 (Mat.max_abs a) in
  Array.for_all (fun x -> x > floor) values

let spectral_radius_complex c =
  let re = Cmat.real_part c and im = Cmat.imag_part c in
  let big = Mat.blocks [ [ re; Mat.neg im ]; [ im; re ] ] in
  spectral_radius big
