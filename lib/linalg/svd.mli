(** Singular value decomposition via the one-sided Jacobi method.

    [decompose a] for an [m]x[n] matrix returns [(u, s, v)] such that
    [a = u * diag s * v^T], with [u] of size [m]x[k], [v] of size [n]x[k],
    [k = min m n], orthonormal columns, and [s] sorted descending. The
    one-sided Jacobi method is slower than bidiagonalization approaches but
    is simple, robust, and computes small singular values to high relative
    accuracy — which matters for the rank decisions in controller synthesis. *)

type sweep_outcome = { sweeps : int; converged : bool }
(** Result of the Jacobi sweep driver: how many sweeps ran, and whether
    column orthogonality was reached before the sweep cap. (This
    replaces an older convention of returning a negated sweep count on
    non-convergence.) *)

val jacobi_sweeps : ?max_sweeps:int -> ?v:Mat.t -> Mat.t -> sweep_outcome
(** Low-level sweep driver, exposed for tests and diagnostics. The
    argument is the TRANSPOSE of the working matrix (row [j] is working
    column [j], contiguous); it is orthogonalized in place by threshold-
    ordered Jacobi rotations, accumulated into [v] when given. Most
    callers want {!decompose} or {!singular_values}. *)

val decompose : ?max_sweeps:int -> Mat.t -> Mat.t * Vec.t * Mat.t
(** [max_sweeps] (default 60) caps the Jacobi sweep count. A run that
    hits the cap before column orthogonality is no longer silent: it
    bumps the [svd.unconverged] counter and emits an [svd.unconverged]
    debug record when the {!Obs.Collector} is enabled, then returns the
    best iterate. The parameter exists for diagnostics and tests; the
    default converges for any conditioning encountered in practice. *)

val singular_values : ?max_sweeps:int -> Mat.t -> Vec.t
(** Singular values only, descending. [max_sweeps] as in {!decompose}. *)

val norm2 : Mat.t -> float
(** Spectral norm (largest singular value). Zero matrix yields [0.]. *)

val norm2_complex : Cmat.t -> float
(** Spectral norm of a complex matrix, by one-sided Jacobi run directly
    in complex arithmetic (planar re/im columns) — no doubled real
    embedding. *)

val rank : ?tol:float -> Mat.t -> int
(** Numerical rank: singular values above [tol * max_sv * max(m,n)]
    (default machine-epsilon based, as in LAPACK). *)

val pinv : ?tol:float -> Mat.t -> Mat.t
(** Moore-Penrose pseudo-inverse. *)

val cond : Mat.t -> float
(** 2-norm condition number; [infinity] if rank deficient. *)
