type t = float array

let create n = Array.make n 0.0

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let ones n = Array.make n 1.0

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = create n in
  v.(i) <- 1.0;
  v

let check_same_dim name a b =
  if dim a <> dim b then invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_same_dim "Vec.add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_same_dim "Vec.sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let neg a = scale (-1.0) a

let check_dst name dst a =
  if dim dst <> dim a then invalid_arg (name ^ ": dst dimension mismatch")

let copy_into ~dst a =
  check_dst "Vec.copy_into" dst a;
  Array.blit a 0 dst 0 (dim a)

let add_into ~dst a b =
  check_same_dim "Vec.add_into" a b;
  check_dst "Vec.add_into" dst a;
  for i = 0 to dim a - 1 do
    Array.unsafe_set dst i (Array.unsafe_get a i +. Array.unsafe_get b i)
  done

let sub_into ~dst a b =
  check_same_dim "Vec.sub_into" a b;
  check_dst "Vec.sub_into" dst a;
  for i = 0 to dim a - 1 do
    Array.unsafe_set dst i (Array.unsafe_get a i -. Array.unsafe_get b i)
  done

let scale_into ~dst s a =
  check_dst "Vec.scale_into" dst a;
  for i = 0 to dim a - 1 do
    Array.unsafe_set dst i (s *. Array.unsafe_get a i)
  done

let dot a b =
  check_same_dim "Vec.dot" a b;
  let acc = ref 0.0 in
  for i = 0 to dim a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(* Scaled accumulation avoids overflow for huge entries and underflow for
   tiny ones, following the classic BLAS dnrm2 algorithm. *)
let norm2 a =
  let scale = ref 0.0 and ssq = ref 1.0 in
  Array.iter
    (fun x ->
      let ax = Float.abs x in
      if ax > 0.0 then
        if !scale < ax then begin
          ssq := 1.0 +. (!ssq *. (!scale /. ax) *. (!scale /. ax));
          scale := ax
        end
        else ssq := !ssq +. ((ax /. !scale) *. (ax /. !scale)))
    a;
  !scale *. sqrt !ssq

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 a

let norm1 a = Array.fold_left (fun m x -> m +. Float.abs x) 0.0 a

let axpy alpha x y =
  check_same_dim "Vec.axpy" x y;
  Array.mapi (fun i xi -> (alpha *. xi) +. y.(i)) x

let map = Array.map

let map2 f a b =
  check_same_dim "Vec.map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let max_abs_index a =
  if dim a = 0 then invalid_arg "Vec.max_abs_index: empty vector";
  let best = ref 0 in
  for i = 1 to dim a - 1 do
    if Float.abs a.(i) > Float.abs a.(!best) then best := i
  done;
  !best

let concat = Array.append

let slice v pos len = Array.sub v pos len

let approx_equal ?(tol = 1e-9) a b =
  dim a = dim b
  &&
  let ok = ref true in
  for i = 0 to dim a - 1 do
    if Float.abs (a.(i) -. b.(i)) > tol then ok := false
  done;
  !ok

let pp fmt v =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    v;
  Format.fprintf fmt "|]"
