(** Dense complex matrices (row-major), built on [Stdlib.Complex].

    Used by the eigenvalue solver, frequency-response evaluation and the
    structured-singular-value routines, where real arithmetic is not
    enough. The API mirrors the real {!Mat} module where meaningful. *)

type t = { rows : int; cols : int; data : Complex.t array }

val create : int -> int -> t
val init : int -> int -> (int -> int -> Complex.t) -> t
val identity : int -> t
val of_real : Mat.t -> t
val real_part : t -> Mat.t
val imag_part : t -> Mat.t

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val dims : t -> int * int
val copy : t -> t
val sub_matrix : t -> int -> int -> int -> int -> t
val set_block : t -> int -> int -> t -> unit

val add : t -> t -> t
val sub : t -> t -> t
val scale : Complex.t -> t -> t
val scale_real : float -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Complex.t array -> Complex.t array

val transpose : t -> t
val conj_transpose : t -> t

val diag : Complex.t array -> t
val diag_real : Vec.t -> t

val norm_fro : t -> float
val max_abs : t -> float

val solve : t -> t -> t
(** Gaussian elimination with partial pivoting.
    @raise Lu.Singular when singular. *)

val resolvent : Complex.t -> t -> t -> t
(** [resolvent z a b] is [(zI - a)^{-1} b], bit-identical to
    [solve (sub (scale z (identity n)) a) b] but building the shifted
    matrix once and factorizing it in place — the hot call of the
    frequency-response grid in [Ss.hinf_norm].
    @raise Lu.Singular when [zI - a] is singular. *)

val inv : t -> t

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
