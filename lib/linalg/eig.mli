(** Eigenvalue computations.

    General (non-symmetric) real matrices are handled by Householder
    reduction to upper Hessenberg form followed by the real Francis
    implicit double-shift QR iteration (complex conjugate pairs are
    extracted from trailing 2x2 blocks at the end, so no complex
    arithmetic runs in the iteration itself); symmetric matrices by the
    cyclic Jacobi method, which also yields eigenvectors. *)

val hessenberg : Mat.t -> Mat.t
(** Orthogonal reduction of a square matrix to upper Hessenberg form
    (same eigenvalues). *)

val eigenvalues : Mat.t -> Complex.t array
(** All eigenvalues of a square real matrix, in no particular order.
    @raise Failure if the QR iteration fails to converge. *)

val eigenvalues_complex_ref : Mat.t -> Complex.t array
(** Reference implementation: the pre-Francis complex shifted-QR path
    (Hessenberg form lifted to [Cmat], Wilkinson single shifts, Givens
    sweeps). Slower than {!eigenvalues}; retained as an independent
    oracle for cross-validation tests.
    @raise Failure if the QR iteration fails to converge. *)

val spectral_radius : Mat.t -> float
(** Largest eigenvalue magnitude. *)

val spectral_abscissa : Mat.t -> float
(** Largest eigenvalue real part (continuous-time stability measure). *)

val is_stable_discrete : ?margin:float -> Mat.t -> bool
(** All eigenvalues strictly inside the unit circle (radius [1. - margin],
    default margin [1e-9]). *)

val is_stable_continuous : ?margin:float -> Mat.t -> bool
(** All eigenvalues with real part below [-margin]. *)

val symmetric : Mat.t -> Vec.t * Mat.t
(** [symmetric a] for symmetric [a] is [(values, vectors)] with eigenvalues
    ascending and eigenvectors as the corresponding columns of [vectors]
    (orthonormal). Only the lower triangle of [a] is read. *)

val symmetric_values : Mat.t -> Vec.t
(** Eigenvalues of a symmetric matrix, ascending. *)

val is_positive_semidefinite : ?tol:float -> Mat.t -> bool
(** Symmetric positive semidefiniteness check via Jacobi eigenvalues;
    eigenvalues above [-tol * max(1, |a|)] count as non-negative. *)

val is_positive_definite : ?tol:float -> Mat.t -> bool

val spectral_radius_complex : Cmat.t -> float
(** Largest eigenvalue magnitude of a complex matrix, computed through the
    real embedding [[re -im; im re]] (whose spectrum is the complex
    spectrum plus its conjugate). *)
