type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let a = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      a.data.((i * cols) + j) <- f i j
    done
  done;
  a

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Vec.dim v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let scalar n s = init n n (fun i j -> if i = j then s else 0.0)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let of_lists ll = of_arrays (Array.of_list (List.map Array.of_list ll))

let of_vec_col v = init (Vec.dim v) 1 (fun i _ -> v.(i))

let of_vec_row v = init 1 (Vec.dim v) (fun _ j -> v.(j))

let random ?(seed = 42) rows cols =
  let st = Random.State.make [| seed; rows; cols |] in
  init rows cols (fun _ _ -> Random.State.float st 2.0 -. 1.0)

let get a i j = a.data.((i * a.cols) + j)

let set a i j x = a.data.((i * a.cols) + j) <- x

let dims a = (a.rows, a.cols)

let row a i = Array.sub a.data (i * a.cols) a.cols

let col a j = Array.init a.rows (fun i -> get a i j)

let diagonal a = Array.init (min a.rows a.cols) (fun i -> get a i i)

let copy a = { a with data = Array.copy a.data }

let to_arrays a = Array.init a.rows (fun i -> row a i)

let set_row a i v =
  if Vec.dim v <> a.cols then invalid_arg "Mat.set_row: dimension mismatch";
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  if Vec.dim v <> a.rows then invalid_arg "Mat.set_col: dimension mismatch";
  for i = 0 to a.rows - 1 do
    set a i j v.(i)
  done

let sub_matrix a i j m n =
  if i < 0 || j < 0 || i + m > a.rows || j + n > a.cols then
    invalid_arg "Mat.sub_matrix: block out of range";
  init m n (fun r c -> get a (i + r) (j + c))

let set_block a i j b =
  if i + b.rows > a.rows || j + b.cols > a.cols then
    invalid_arg "Mat.set_block: block out of range";
  for r = 0 to b.rows - 1 do
    for c = 0 to b.cols - 1 do
      set a (i + r) (j + c) (get b r c)
    done
  done

let transpose a = init a.cols a.rows (fun i j -> get a j i)

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Mat.hcat: row mismatch";
  let r = create a.rows (a.cols + b.cols) in
  set_block r 0 0 a;
  set_block r 0 a.cols b;
  r

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: column mismatch";
  let r = create (a.rows + b.rows) a.cols in
  set_block r 0 0 a;
  set_block r a.rows 0 b;
  r

let blocks grid =
  match grid with
  | [] -> create 0 0
  | first_row :: _ ->
    let rows = List.fold_left (fun acc r ->
        match r with
        | [] -> invalid_arg "Mat.blocks: empty block row"
        | b :: _ -> acc + b.rows)
        0 grid
    in
    let cols = List.fold_left (fun acc b -> acc + b.cols) 0 first_row in
    let result = create rows cols in
    let roff = ref 0 in
    List.iter
      (fun block_row ->
        let coff = ref 0 in
        let height =
          match block_row with b :: _ -> b.rows | [] -> assert false
        in
        List.iter
          (fun b ->
            if b.rows <> height then
              invalid_arg "Mat.blocks: inconsistent block heights";
            set_block result !roff !coff b;
            coff := !coff + b.cols)
          block_row;
        if !coff <> cols then
          invalid_arg "Mat.blocks: inconsistent block widths";
        roff := !roff + height)
      grid;
    result

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_same "Mat.add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same "Mat.sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let neg a = scale (-1.0) a

(* Shared matrix-multiply kernel: writes a*b over [rd], where [a] is
   m x k and [b] is k x n, both row-major. Register-tiled 2x4: the hot
   loop keeps eight accumulators live across the whole k dimension, so
   each b element fetched serves two rows and each a element four
   columns (the refs never escape, so ocamlopt unboxes them into
   registers). Tails fall back to 2x1 / 1x4 / 1x1 strips.

   Every destination element is one independent k-ascending sum starting
   from 0.0, identical in value across tile shapes; [mul] and [mul_into]
   both call this kernel, so converting a hot loop between them keeps
   bit-identical results. *)
let gemm_kernel ~m ~k ~n ad bd rd =
  let i = ref 0 in
  while !i + 1 < m do
    let i0 = !i in
    let a0 = i0 * k and a1 = (i0 + 1) * k in
    let r0 = i0 * n and r1 = (i0 + 1) * n in
    let j = ref 0 in
    while !j + 3 < n do
      let j0 = !j in
      let acc00 = ref 0.0 and acc01 = ref 0.0
      and acc02 = ref 0.0 and acc03 = ref 0.0
      and acc10 = ref 0.0 and acc11 = ref 0.0
      and acc12 = ref 0.0 and acc13 = ref 0.0 in
      for l = 0 to k - 1 do
        let av0 = Array.unsafe_get ad (a0 + l)
        and av1 = Array.unsafe_get ad (a1 + l) in
        let boff = (l * n) + j0 in
        let b0 = Array.unsafe_get bd boff
        and b1 = Array.unsafe_get bd (boff + 1)
        and b2 = Array.unsafe_get bd (boff + 2)
        and b3 = Array.unsafe_get bd (boff + 3) in
        acc00 := !acc00 +. (av0 *. b0);
        acc01 := !acc01 +. (av0 *. b1);
        acc02 := !acc02 +. (av0 *. b2);
        acc03 := !acc03 +. (av0 *. b3);
        acc10 := !acc10 +. (av1 *. b0);
        acc11 := !acc11 +. (av1 *. b1);
        acc12 := !acc12 +. (av1 *. b2);
        acc13 := !acc13 +. (av1 *. b3)
      done;
      Array.unsafe_set rd (r0 + j0) !acc00;
      Array.unsafe_set rd (r0 + j0 + 1) !acc01;
      Array.unsafe_set rd (r0 + j0 + 2) !acc02;
      Array.unsafe_set rd (r0 + j0 + 3) !acc03;
      Array.unsafe_set rd (r1 + j0) !acc10;
      Array.unsafe_set rd (r1 + j0 + 1) !acc11;
      Array.unsafe_set rd (r1 + j0 + 2) !acc12;
      Array.unsafe_set rd (r1 + j0 + 3) !acc13;
      j := j0 + 4
    done;
    while !j < n do
      let j0 = !j in
      let acc0 = ref 0.0 and acc1 = ref 0.0 in
      for l = 0 to k - 1 do
        let bv = Array.unsafe_get bd ((l * n) + j0) in
        acc0 := !acc0 +. (Array.unsafe_get ad (a0 + l) *. bv);
        acc1 := !acc1 +. (Array.unsafe_get ad (a1 + l) *. bv)
      done;
      Array.unsafe_set rd (r0 + j0) !acc0;
      Array.unsafe_set rd (r1 + j0) !acc1;
      j := j0 + 1
    done;
    i := i0 + 2
  done;
  if !i < m then begin
    let a0 = !i * k and r0 = !i * n in
    let j = ref 0 in
    while !j + 3 < n do
      let j0 = !j in
      let acc0 = ref 0.0 and acc1 = ref 0.0
      and acc2 = ref 0.0 and acc3 = ref 0.0 in
      for l = 0 to k - 1 do
        let av = Array.unsafe_get ad (a0 + l) in
        let boff = (l * n) + j0 in
        acc0 := !acc0 +. (av *. Array.unsafe_get bd boff);
        acc1 := !acc1 +. (av *. Array.unsafe_get bd (boff + 1));
        acc2 := !acc2 +. (av *. Array.unsafe_get bd (boff + 2));
        acc3 := !acc3 +. (av *. Array.unsafe_get bd (boff + 3))
      done;
      Array.unsafe_set rd (r0 + j0) !acc0;
      Array.unsafe_set rd (r0 + j0 + 1) !acc1;
      Array.unsafe_set rd (r0 + j0 + 2) !acc2;
      Array.unsafe_set rd (r0 + j0 + 3) !acc3;
      j := j0 + 4
    done;
    while !j < n do
      let j0 = !j in
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (a0 + l)
             *. Array.unsafe_get bd ((l * n) + j0))
      done;
      Array.unsafe_set rd (r0 + j0) !acc;
      j := j0 + 1
    done
  end

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let r = create a.rows b.cols in
  gemm_kernel ~m:a.rows ~k:a.cols ~n:b.cols a.data b.data r.data;
  r

let mul_vec a v =
  if a.cols <> Vec.dim v then invalid_arg "Mat.mul_vec: dimension mismatch";
  let ad = a.data in
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      let off = i * a.cols in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (Array.unsafe_get ad (off + j) *. Array.unsafe_get v j)
      done;
      !acc)

let mul3 a b c =
  (* Choose association order by flop count. *)
  let cost_left = (a.rows * a.cols * b.cols) + (a.rows * b.cols * c.cols) in
  let cost_right = (b.rows * b.cols * c.cols) + (a.rows * a.cols * c.cols) in
  if cost_left <= cost_right then mul (mul a b) c else mul a (mul b c)

let add_scaled a s b =
  check_same "Mat.add_scaled" a b;
  { a with data = Array.mapi (fun k x -> x +. (s *. b.data.(k))) a.data }

(* ------------------------------------------------------------------ *)
(* In-place / destination-passing kernels                              *)
(* ------------------------------------------------------------------ *)

(* Every [_into] kernel computes element-for-element the same float
   operations, in the same order, as its allocating counterpart: callers
   converting hot loops to these kernels keep bit-identical results.
   Bounds are checked once at entry; inner loops use unsafe accesses. *)

let check_dst name ~rows ~cols dst =
  if dst.rows <> rows || dst.cols <> cols then
    invalid_arg (name ^ ": dst dimension mismatch")

(* Zero-length storage is exempt: OCaml interns the empty array, so two
   independent 0 x n matrices share it physically — and there is nothing
   to corrupt. *)
let check_not_aliased name dst srcs =
  if
    Array.length dst.data > 0
    && List.exists (fun s -> s.data == dst.data) srcs
  then invalid_arg (name ^ ": dst aliases a source matrix")

let copy_into ~dst a =
  check_dst "Mat.copy_into" ~rows:a.rows ~cols:a.cols dst;
  Array.blit a.data 0 dst.data 0 (Array.length a.data)

(* Elementwise kernels tolerate [dst] aliasing a source: every entry is
   read before it is written. *)

let add_into ~dst a b =
  check_same "Mat.add_into" a b;
  check_dst "Mat.add_into" ~rows:a.rows ~cols:a.cols dst;
  let ad = a.data and bd = b.data and rd = dst.data in
  for k = 0 to Array.length ad - 1 do
    Array.unsafe_set rd k
      (Array.unsafe_get ad k +. Array.unsafe_get bd k)
  done

let sub_into ~dst a b =
  check_same "Mat.sub_into" a b;
  check_dst "Mat.sub_into" ~rows:a.rows ~cols:a.cols dst;
  let ad = a.data and bd = b.data and rd = dst.data in
  for k = 0 to Array.length ad - 1 do
    Array.unsafe_set rd k
      (Array.unsafe_get ad k -. Array.unsafe_get bd k)
  done

let scale_into ~dst s a =
  check_dst "Mat.scale_into" ~rows:a.rows ~cols:a.cols dst;
  let ad = a.data and rd = dst.data in
  for k = 0 to Array.length ad - 1 do
    Array.unsafe_set rd k (s *. Array.unsafe_get ad k)
  done

let axpy ~dst s x =
  check_same "Mat.axpy" dst x;
  let xd = x.data and rd = dst.data in
  for k = 0 to Array.length rd - 1 do
    Array.unsafe_set rd k
      (Array.unsafe_get rd k +. (s *. Array.unsafe_get xd k))
  done

let transpose_into ~dst a =
  check_dst "Mat.transpose_into" ~rows:a.cols ~cols:a.rows dst;
  check_not_aliased "Mat.transpose_into" dst [ a ];
  let ad = a.data and rd = dst.data in
  for i = 0 to a.cols - 1 do
    let roff = i * a.rows in
    for j = 0 to a.rows - 1 do
      Array.unsafe_set rd (roff + j) (Array.unsafe_get ad ((j * a.cols) + i))
    done
  done

let symmetrize_into ~dst a =
  if a.rows <> a.cols then invalid_arg "Mat.symmetrize_into: non-square";
  check_dst "Mat.symmetrize_into" ~rows:a.rows ~cols:a.cols dst;
  check_not_aliased "Mat.symmetrize_into" dst [ a ];
  let n = a.rows in
  let ad = a.data and rd = dst.data in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Array.unsafe_set rd ((i * n) + j)
        (0.5
        *. (Array.unsafe_get ad ((i * n) + j)
           +. Array.unsafe_get ad ((j * n) + i)))
    done
  done

let mul_into ~dst a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul_into: dimension mismatch";
  check_dst "Mat.mul_into" ~rows:a.rows ~cols:b.cols dst;
  check_not_aliased "Mat.mul_into" dst [ a; b ];
  (* Same tiled kernel as [mul]: every element is fully overwritten, so
     no zero fill is needed. *)
  gemm_kernel ~m:a.rows ~k:a.cols ~n:b.cols a.data b.data dst.data

let mul_vec_into ~dst a v =
  if a.cols <> Vec.dim v then
    invalid_arg "Mat.mul_vec_into: dimension mismatch";
  if Array.length dst <> a.rows then
    invalid_arg "Mat.mul_vec_into: dst dimension mismatch";
  if Array.length dst > 0 && (dst == v || dst == a.data) then
    invalid_arg "Mat.mul_vec_into: dst aliases a source";
  let ad = a.data in
  for i = 0 to a.rows - 1 do
    let acc = ref 0.0 in
    let off = i * a.cols in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (Array.unsafe_get ad (off + j) *. Array.unsafe_get v j)
    done;
    Array.unsafe_set dst i !acc
  done

let hadamard a b =
  check_same "Mat.hadamard" a b;
  { a with data = Array.mapi (fun k x -> x *. b.data.(k)) a.data }

let map f a = { a with data = Array.map f a.data }

let pow a n =
  if not (a.rows = a.cols) then invalid_arg "Mat.pow: non-square";
  if n < 0 then invalid_arg "Mat.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  go (identity a.rows) a n

let norm_fro a = Vec.norm2 a.data

let norm_inf a =
  let best = ref 0.0 in
  for i = 0 to a.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to a.cols - 1 do
      s := !s +. Float.abs (get a i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let norm1 a = norm_inf (transpose a)

let max_abs a = Vec.norm_inf a.data

let trace a =
  let acc = ref 0.0 in
  for i = 0 to min a.rows a.cols - 1 do
    acc := !acc +. get a i i
  done;
  !acc

let is_square a = a.rows = a.cols

let is_symmetric ?(tol = 1e-9) a =
  is_square a
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if Float.abs (get a i j -. get a j i) > tol then ok := false
    done
  done;
  !ok

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Vec.approx_equal ~tol a.data b.data

let symmetrize a = scale 0.5 (add a (transpose a))

let pp fmt a =
  Format.fprintf fmt "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%10.5g" (get a i j)
    done;
    Format.fprintf fmt "]";
    if i < a.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
