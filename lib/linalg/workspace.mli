(** Scratch-buffer lease pool for iterative algorithms.

    A workspace hands out matrices and vectors of requested shapes and
    remembers them: after [reset], the same buffers are re-leased in
    order, so an iteration that leases its temporaries through a
    workspace allocates only on its first pass.

    Rules:
    - Call [reset] at the top of each iteration, then lease in a fixed
      order. Leased buffers are {e not} zeroed; every consumer must
      fully overwrite them (all [Mat._into] kernels do).
    - A workspace is not thread-safe and must not be shared across
      domains: create one per call (or per domain-local solver). *)

type t

val create : unit -> t

val reset : t -> unit
(** Return every leased buffer to the pool (contents untouched). *)

val set_leak_check : bool -> unit
(** Debug aid, process-global, off by default. When on, a lease that has
    to allocate a fresh buffer after the workspace has seen two [reset]s
    raises [Failure] instead. A correct cursor discipline reaches its
    allocation fixed point after the first iteration, so a steady-state
    allocation means the caller's lease pattern varies across iterations
    — the "later iterations are allocation-free" promise is leaking. *)

val mat : t -> int -> int -> Mat.t
(** [mat ws m n] leases an [m]x[n] scratch matrix. *)

val vec : t -> int -> Vec.t
(** [vec ws n] leases a scratch vector of length [n]. *)

(** {1 Composite leases}

    Pure-looking helpers whose results live in the workspace: valid
    until the next [reset], and must not be returned to callers. *)

val transpose : t -> Mat.t -> Mat.t
val mul : t -> Mat.t -> Mat.t -> Mat.t

val mul3 : t -> Mat.t -> Mat.t -> Mat.t -> Mat.t
(** Same association-order choice as [Mat.mul3]. *)
