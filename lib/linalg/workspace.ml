(* A lease pool of scratch matrices/vectors for iterative algorithms.

   The discipline is cursor-based: an algorithm creates one workspace per
   call, calls [reset] at the top of each iteration, and then leases its
   temporaries in a fixed order. The first iteration allocates; every
   later iteration re-leases the same buffers, so steady-state iterations
   are allocation-free.

   Leased buffers are NOT zeroed on re-lease — every kernel writing into
   them must fully overwrite its destination (all the [Mat._into] kernels
   do). A workspace is deliberately not thread-safe: it is private to one
   call in one domain, which is also what keeps the domain-parallel
   drivers (PR 4) safe — never store a workspace in a shared structure. *)

type bucket = { mutable mats : Mat.t list; mutable free : Mat.t list }

type vbucket = { mutable vecs : Vec.t list; mutable vfree : Vec.t list }

type t = {
  buckets : (int * int, bucket) Hashtbl.t;
  vbuckets : (int, vbucket) Hashtbl.t;
  mutable resets : int;
}

(* Debug aid: when on, a lease that misses the free list after the pool
   has been warmed up (two full resets) raises instead of silently
   allocating. A correct lease/reset discipline reaches its allocation
   fixed point after the first iteration, so a fresh allocation in
   steady state means the caller leases in a shape- or count-varying
   pattern — exactly the "allocation-free iterations" promise leaking. *)
let leak_check = Atomic.make false

let set_leak_check on = Atomic.set leak_check on

let leak what t =
  if Atomic.get leak_check && t.resets >= 2 then
    failwith
      (Printf.sprintf
         "Workspace leak check: fresh %s allocated after %d resets \
          (lease pattern is not iteration-stable)"
         what t.resets)

let create () =
  { buckets = Hashtbl.create 8; vbuckets = Hashtbl.create 8; resets = 0 }

let reset t =
  t.resets <- t.resets + 1;
  Hashtbl.iter (fun _ b -> b.free <- b.mats) t.buckets;
  Hashtbl.iter (fun _ b -> b.vfree <- b.vecs) t.vbuckets

let mat t rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Workspace.mat: negative dimension";
  let key = (rows, cols) in
  let b =
    match Hashtbl.find_opt t.buckets key with
    | Some b -> b
    | None ->
      let b = { mats = []; free = [] } in
      Hashtbl.add t.buckets key b;
      b
  in
  match b.free with
  | m :: rest ->
    b.free <- rest;
    m
  | [] ->
    leak (Printf.sprintf "%dx%d matrix" rows cols) t;
    let m = Mat.create rows cols in
    b.mats <- m :: b.mats;
    m

let vec t n =
  if n < 0 then invalid_arg "Workspace.vec: negative dimension";
  let b =
    match Hashtbl.find_opt t.vbuckets n with
    | Some b -> b
    | None ->
      let b = { vecs = []; vfree = [] } in
      Hashtbl.add t.vbuckets n b;
      b
  in
  match b.vfree with
  | v :: rest ->
    b.vfree <- rest;
    v
  | [] ->
    leak (Printf.sprintf "length-%d vector" n) t;
    let v = Vec.create n in
    b.vecs <- v :: b.vecs;
    v

(* Common composite leases, so call sites stay terse. *)

let transpose t a =
  let d = mat t a.Mat.cols a.Mat.rows in
  Mat.transpose_into ~dst:d a;
  d

let mul t a b =
  let d = mat t a.Mat.rows b.Mat.cols in
  Mat.mul_into ~dst:d a b;
  d

(* Same association-order rule as [Mat.mul3], on leased scratch. *)
let mul3 t a b c =
  let cost_left =
    (a.Mat.rows * a.Mat.cols * b.Mat.cols) + (a.Mat.rows * b.Mat.cols * c.Mat.cols)
  in
  let cost_right =
    (b.Mat.rows * b.Mat.cols * c.Mat.cols) + (a.Mat.rows * a.Mat.cols * c.Mat.cols)
  in
  if cost_left <= cost_right then mul t (mul t a b) c
  else mul t a (mul t b c)
