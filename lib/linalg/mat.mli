(** Dense real matrices, stored row-major.

    This module is the workhorse of the numerical stack. All operations
    allocate fresh matrices; dimension mismatches raise [Invalid_argument].
    Indices are 0-based throughout. *)

type t = { rows : int; cols : int; data : float array }

(** {1 Construction} *)

val create : int -> int -> t
(** [create m n] is the [m]x[n] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init m n f] has entry [f i j] at row [i], column [j]. *)

val identity : int -> t

val diag : Vec.t -> t
(** Square matrix with the given diagonal. *)

val scalar : int -> float -> t
(** [scalar n s] is [s] times the [n]x[n] identity. *)

val of_arrays : float array array -> t
(** Rows given as arrays; all rows must have equal length. *)

val of_lists : float list list -> t

val of_vec_col : Vec.t -> t
(** Column matrix from a vector. *)

val of_vec_row : Vec.t -> t

val random : ?seed:int -> int -> int -> t
(** Entries uniform in [[-1, 1]], deterministic for a given [seed]. *)

(** {1 Access} *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val dims : t -> int * int
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val diagonal : t -> Vec.t
val copy : t -> t
val to_arrays : t -> float array array

val set_row : t -> int -> Vec.t -> unit
val set_col : t -> int -> Vec.t -> unit

val sub_matrix : t -> int -> int -> int -> int -> t
(** [sub_matrix a i j m n] is the [m]x[n] block of [a] with top-left corner
    at ([i], [j]). *)

val set_block : t -> int -> int -> t -> unit
(** [set_block a i j b] overwrites the block of [a] at ([i], [j]) with [b]. *)

(** {1 Shape combinators} *)

val transpose : t -> t
val hcat : t -> t -> t
val vcat : t -> t -> t

val blocks : t list list -> t
(** Assemble a block matrix from a rectangular grid of blocks. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t

val mul3 : t -> t -> t -> t
(** [mul3 a b c] is [a*b*c], associated for minimal work. *)

val add_scaled : t -> float -> t -> t
(** [add_scaled a s b] is [a + s*b]. *)

(** {1 In-place / destination-passing kernels}

    Allocation-free counterparts of the pure operations above, for hot
    loops: each writes its result into [dst] and computes exactly the
    same float operations in the same order as the pure version, so a
    conversion to these kernels is bit-identical. Dimensions are checked
    once at entry; inner loops are unchecked.

    Aliasing rules: the elementwise kernels ([copy_into], [add_into],
    [sub_into], [scale_into], [axpy]) tolerate [dst] aliasing a source
    (each entry is read before written). The reduction/permutation
    kernels ([mul_into], [mul_vec_into], [transpose_into],
    [symmetrize_into]) raise [Invalid_argument] if [dst] shares storage
    with a source. *)

val copy_into : dst:t -> t -> unit
(** [copy_into ~dst a] overwrites [dst] with [a]. *)

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst a b]: [dst <- a + b]. [dst] may alias [a] or [b]. *)

val sub_into : dst:t -> t -> t -> unit
(** [sub_into ~dst a b]: [dst <- a - b]. [dst] may alias [a] or [b]. *)

val scale_into : dst:t -> float -> t -> unit
(** [scale_into ~dst s a]: [dst <- s*a]. [dst] may alias [a]. *)

val axpy : dst:t -> float -> t -> unit
(** [axpy ~dst s x]: [dst <- dst + s*x]. *)

val transpose_into : dst:t -> t -> unit
(** [transpose_into ~dst a]: [dst <- a^T]. [dst] must not alias [a]. *)

val symmetrize_into : dst:t -> t -> unit
(** [symmetrize_into ~dst a]: [dst <- (a + a^T)/2]. [dst] must not alias
    [a]. *)

val mul_into : dst:t -> t -> t -> unit
(** [mul_into ~dst a b]: [dst <- a*b]. [dst] must not alias [a] or [b];
    aliasing raises [Invalid_argument]. *)

val mul_vec_into : dst:Vec.t -> t -> Vec.t -> unit
(** [mul_vec_into ~dst a v]: [dst <- a*v]. [dst] must not alias [v] (or
    the storage of [a]). *)

val hadamard : t -> t -> t

val map : (float -> float) -> t -> t

val pow : t -> int -> t
(** Non-negative integer matrix power by repeated squaring. *)

(** {1 Norms and predicates} *)

val norm_fro : t -> float

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val norm1 : t -> float
(** Maximum absolute column sum. *)

val max_abs : t -> float
val trace : t -> float

val is_square : t -> bool
val is_symmetric : ?tol:float -> t -> bool
val approx_equal : ?tol:float -> t -> t -> bool

val symmetrize : t -> t
(** [(a + a^T)/2]; useful to remove drift in iterative Riccati solvers. *)

val pp : Format.formatter -> t -> unit
